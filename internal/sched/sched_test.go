package sched

import (
	"math"
	"testing"

	"cordoba/internal/soc"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-30) {
		t.Errorf("%s: got %v want %v", name, got, want)
	}
}

// twoPhase is a workload with a known analytical answer: two threads compute
// 1 s each simultaneously, then one thread computes 1 s alone.
func twoPhase() *Workload {
	return &Workload{
		Name: "two-phase",
		Threads: []Thread{
			{Name: "a", Burst: []Segment{{Compute: 2}}},
			{Name: "b", Burst: []Segment{{Compute: 1}}},
		},
	}
}

func TestSimulateKnownMakespan(t *testing.T) {
	w := twoPhase()
	// Two cores: both run at full rate; makespan = 2.
	r2, err := Simulate(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "2-core makespan", r2.Makespan, 2, 1e-9)
	// One core: 3 CPU-seconds of demand → makespan 3.
	r1, err := Simulate(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "1-core makespan", r1.Makespan, 3, 1e-9)
	// TLP on the 2-core run: 2 threads for 1 s, 1 thread for 1 s → 1.5.
	near(t, "TLP", r2.TLP, 1.5, 1e-9)
	// Occupancy histogram: half the busy time at 2 threads, half at 1.
	near(t, "occ[0]", r2.RunnableOccupancy[0], 0.5, 1e-9)
	near(t, "occ[1]", r2.RunnableOccupancy[1], 0.5, 1e-9)
}

func TestSimulateRespectsWaits(t *testing.T) {
	w := &Workload{
		Name: "waity",
		Threads: []Thread{
			{Name: "a", Burst: []Segment{{Compute: 1, Wait: 1}, {Compute: 1}}},
		},
	}
	r, err := Simulate(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "makespan", r.Makespan, 3, 1e-9)
	// Busy time excludes the wait.
	near(t, "busy", r.BusyTime, 2, 1e-9)
}

func TestSimulateStartOffsets(t *testing.T) {
	w := &Workload{
		Name: "staggered",
		Threads: []Thread{
			{Name: "a", Start: 0, Burst: []Segment{{Compute: 1}}},
			{Name: "b", Start: 5, Burst: []Segment{{Compute: 1}}},
		},
	}
	r, err := Simulate(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "makespan", r.Makespan, 6, 1e-9)
	// Never more than one runnable thread.
	near(t, "occ[0]", r.RunnableOccupancy[0], 1, 1e-9)
	near(t, "TLP", r.TLP, 1, 1e-9)
}

func TestSimulateOversubscribed(t *testing.T) {
	// Four identical threads on one core: perfect sharing, makespan = 4.
	w := &Workload{Name: "over"}
	for i := 0; i < 4; i++ {
		w.Threads = append(w.Threads, Thread{Name: "t", Burst: []Segment{{Compute: 1}}})
	}
	r, err := Simulate(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "makespan", r.Makespan, 4, 1e-9)
	// All busy time at 4 runnable threads but only 1 running.
	near(t, "runnable[3]", r.RunnableOccupancy[3], 1, 1e-9)
	near(t, "running[0]", r.Occupancy[0], 1, 1e-9)
	near(t, "TLP", r.TLP, 4, 1e-9)
}

func TestValidation(t *testing.T) {
	cases := []*Workload{
		{Name: "empty"},
		{Name: "neg-start", Threads: []Thread{{Start: -1, Burst: []Segment{{Compute: 1}}}}},
		{Name: "neg-seg", Threads: []Thread{{Burst: []Segment{{Compute: -1}}}}},
		{Name: "no-compute", Threads: []Thread{{Burst: []Segment{{Wait: 1}}}}},
	}
	for _, w := range cases {
		if _, err := Simulate(w, 1); err == nil {
			t.Errorf("%s should fail validation", w.Name)
		}
	}
	if _, err := Simulate(twoPhase(), 0); err == nil {
		t.Error("0 cores should error")
	}
}

func TestSlowdown(t *testing.T) {
	s, err := Slowdown(twoPhase(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "slowdown", s, 1.5, 1e-9)
}

func TestSimulationDoesNotMutateWorkload(t *testing.T) {
	w := twoPhase()
	before := w.Threads[0].Burst[0].Compute
	if _, err := Simulate(w, 2); err != nil {
		t.Fatal(err)
	}
	if w.Threads[0].Burst[0].Compute != before {
		t.Error("simulation mutated the workload")
	}
	// Running again gives identical results.
	r1, _ := Simulate(w, 2)
	r2, _ := Simulate(w, 2)
	if r1.Makespan != r2.Makespan || r1.TLP != r2.TLP {
		t.Error("simulation not repeatable")
	}
}

func TestSyntheticVRHitsTargetTLP(t *testing.T) {
	for _, target := range []float64{3.5, 4.2} {
		w := SyntheticVR("vr", target, 30, 1)
		r, err := Simulate(w, 16) // plenty of cores: TLP unconstrained
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.TLP-target) > 0.8 {
			t.Errorf("target TLP %.2f, measured %.2f", target, r.TLP)
		}
	}
}

func TestSyntheticVRDeterministic(t *testing.T) {
	a := SyntheticVR("vr", 4, 10, 7)
	b := SyntheticVR("vr", 4, 10, 7)
	if len(a.Threads) != len(b.Threads) {
		t.Fatal("nondeterministic thread count")
	}
	ra, _ := Simulate(a, 4)
	rb, _ := Simulate(b, 4)
	if ra.Makespan != rb.Makespan {
		t.Error("same seed should give the same simulation")
	}
}

func TestHistogramFolding(t *testing.T) {
	occ := []float64{0.1, 0.2, 0.3, 0.2, 0.1, 0.1}
	h := Histogram(occ, 4)
	near(t, "h[0]", h[0], 0.1, 1e-12)
	near(t, "h[3]", h[3], 0.4, 1e-12) // 0.2+0.1+0.1 folded
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	near(t, "sum", sum, 1.0, 1e-12)
}

func TestTopThreads(t *testing.T) {
	w := &Workload{
		Name: "w",
		Threads: []Thread{
			{Name: "small", Burst: []Segment{{Compute: 1}}},
			{Name: "big", Burst: []Segment{{Compute: 10}}},
			{Name: "mid", Burst: []Segment{{Compute: 5}}},
		},
	}
	top := TopThreads(w, 2)
	if len(top) != 2 || top[0] != "big" || top[1] != "mid" {
		t.Errorf("top = %v", top)
	}
	if got := TopThreads(w, 99); len(got) != 3 {
		t.Errorf("overlong k should clamp: %v", got)
	}
}

// Cross-validation: the analytical work-conserving slowdown model of
// internal/soc, fed with the scheduler's measured occupancy histogram, must
// predict the scheduler's own measured slowdown closely. This is the
// substitute for validating against Perfetto traces.
func TestSocModelMatchesScheduler(t *testing.T) {
	w := SyntheticVR("vr", 4.0, 60, 3)
	ref, err := Simulate(w, soc.MaxCores)
	if err != nil {
		t.Fatal(err)
	}
	var profile soc.TLPProfile
	h := Histogram(ref.RunnableOccupancy, soc.MaxCores)
	copy(profile.Fraction[:], h)
	if err := profile.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 5, 6} {
		measured, err := Slowdown(w, n, soc.MaxCores)
		if err != nil {
			t.Fatal(err)
		}
		predicted := profile.Slowdown(n)
		if math.Abs(measured-predicted) > 0.08*measured {
			t.Errorf("%d cores: measured slowdown %.4f, model predicts %.4f", n, measured, predicted)
		}
	}
}

// Work conservation: makespan never decreases when cores are removed and
// never falls below total work / cores.
func TestSlowdownMonotoneInCores(t *testing.T) {
	w := SyntheticVR("vr", 4.3, 40, 11)
	prev := math.Inf(1)
	for n := 1; n <= 8; n++ {
		r, err := Simulate(w, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan > prev+1e-9 {
			t.Errorf("%d cores slower than %d cores", n, n-1)
		}
		prev = r.Makespan
	}
}
