package carbon

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// 3D-stacking constants, following the 3D-Carbon characterization
// [Zhao et al., arXiv:2307.08060]: hybrid bonding spends fab energy per
// bonded interface area and each interface carries a yield risk that scraps
// the whole stack.
const (
	// defaultTiers is the tier count a monolithic die is split into when
	// the spec does not already enumerate a stack.
	defaultTiers = 2
	// defaultInterfaceYield is the per-bonding-interface yield.
	defaultInterfaceYield = 0.99
	// defaultBondEnergyKWhPerCM2 is the hybrid-bonding fab energy per cm²
	// of bonded interface (wafer thinning, TSV reveal, anneal).
	defaultBondEnergyKWhPerCM2 = 0.05
	// defaultTSVOverhead inflates each synthesized tier's area for the
	// TSV field (matches accel's TSVAreaOverhead calibration).
	defaultTSVOverhead = 0.08
)

// Stacked3DModel prices a 3D-Carbon-style die stack: tiers are fabricated
// (and yielded) separately, then hybrid-bonded vertically. Each bonding
// interface pays fab energy proportional to the bonded area and carries a
// yield risk that scraps the whole stack's silicon.
//
// Specs that already enumerate a stack (Stacked, or several die entries —
// e.g. a 3D accel.Config's logic + memory dies) are priced tier-per-die as
// given; a single monolithic die is first split into Tiers equal tiers,
// each inflated by the TSV area overhead.
type Stacked3DModel struct {
	// Tiers splits a monolithic spec into this many tiers; zero selects 2.
	Tiers int
	// InterfaceYield is the per-bonding-interface yield; zero selects 0.99.
	InterfaceYield float64
	// BondEnergyKWhPerCM2 is the hybrid-bonding energy per cm² of bonded
	// interface; zero selects 0.05 kWh/cm².
	BondEnergyKWhPerCM2 float64
	// TSVOverhead is the per-tier area overhead when splitting a
	// monolithic die; zero selects 0.08.
	TSVOverhead float64
}

// Name implements Model.
func (Stacked3DModel) Name() string { return "stacked-3d" }

func (m Stacked3DModel) tiers() int {
	if m.Tiers <= 0 {
		return defaultTiers
	}
	return m.Tiers
}

func (m Stacked3DModel) interfaceYield() float64 {
	if m.InterfaceYield <= 0 || m.InterfaceYield > 1 {
		return defaultInterfaceYield
	}
	return m.InterfaceYield
}

func (m Stacked3DModel) bondEnergy() float64 {
	if m.BondEnergyKWhPerCM2 <= 0 {
		return defaultBondEnergyKWhPerCM2
	}
	return m.BondEnergyKWhPerCM2
}

func (m Stacked3DModel) tsvOverhead() float64 {
	if m.TSVOverhead <= 0 {
		return defaultTSVOverhead
	}
	return m.TSVOverhead
}

// tierSpecs lowers the spec onto the stack this backend bonds: the spec's
// own dies when it already describes a stack, otherwise a Tiers-way uniform
// split of the single die with TSV overhead.
func (m Stacked3DModel) tierSpecs(spec DesignSpec) []DieSpec {
	if !spec.Stacked && len(spec.Dies) == 1 && spec.Dies[0].count() == 1 && m.tiers() > 1 {
		d := spec.Dies[0]
		n := m.tiers()
		per := d.Area / units.Area(n) * units.Area(1+m.tsvOverhead())
		return []DieSpec{{
			Name:    fmt.Sprintf("%s-tier", d.Name),
			Area:    per,
			Process: d.Process,
			Count:   n,
			Yield:   d.Yield,
		}}
	}
	return spec.Dies
}

// EmbodiedDesign implements Model.
func (m Stacked3DModel) EmbodiedDesign(spec DesignSpec) (Breakdown, error) {
	if err := spec.Validate(); err != nil {
		return Breakdown{}, err
	}
	dies := m.tierSpecs(spec)
	bd := Breakdown{Model: m.Name(), Dies: make([]DieCarbon, 0, len(dies))}

	// Flatten the stack bottom-up so bonded-interface areas pair adjacent
	// tiers.
	var tierAreas []units.Area
	for _, d := range dies {
		y := spec.dieYield(d)
		e, err := d.Process.EmbodiedDie(spec.Fab, d.Area, y)
		if err != nil {
			return Breakdown{}, fmt.Errorf("carbon: design %q tier %q: %w", spec.Name, d.Name, err)
		}
		count := d.count()
		batch := e * units.Carbon(count)
		bd.Silicon += batch
		bd.Dies = append(bd.Dies, DieCarbon{Name: d.Name, Area: d.Area, Count: count, Yield: y, Carbon: batch})
		for i := 0; i < count; i++ {
			tierAreas = append(tierAreas, d.Area)
		}
	}

	pkg, err := spec.Packaging.Assembly(len(tierAreas))
	if err != nil {
		return Breakdown{}, fmt.Errorf("carbon: design %q: %w", spec.Name, err)
	}
	bd.Packaging = pkg

	// Bonding energy: each interface pays hybrid-bonding fab energy over
	// the overlapped (smaller) tier area, charged at the fab grid's CI.
	var bondCarbon units.Carbon
	for i := 1; i < len(tierAreas); i++ {
		overlap := tierAreas[i]
		if tierAreas[i-1] < overlap {
			overlap = tierAreas[i-1]
		}
		bondCarbon += spec.Fab.CI.Of(units.KWh(m.bondEnergy() * overlap.CM2()))
	}

	// Interface-yield scrap: one bad bond scraps the whole stack.
	interfaces := len(tierAreas) - 1
	stackYield := math.Pow(m.interfaceYield(), float64(interfaces))
	loss := units.Carbon(bd.Silicon.Grams() * (1/stackYield - 1))

	bd.Bonding = loss + bondCarbon
	bd.Total = bd.Silicon + bd.Packaging + bd.Bonding
	return bd, nil
}
