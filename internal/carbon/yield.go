package carbon

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// YieldModel predicts fabrication yield as a function of die area and defect
// density (defects per cm²). §V: "incorporate additional models for die
// placement and yield, such as the Murphy yield model".
type YieldModel interface {
	// Yield returns the fraction of good dice in (0, 1].
	Yield(area units.Area, defectDensity float64) float64
	// Name identifies the model.
	Name() string
}

// MurphyYield is Murphy's 1964 model [34]: Y = ((1 − e^{−AD})/(AD))².
type MurphyYield struct{}

// Name implements YieldModel.
func (MurphyYield) Name() string { return "murphy" }

// Yield implements YieldModel.
func (MurphyYield) Yield(area units.Area, d float64) float64 {
	ad := area.CM2() * d
	if ad <= 0 {
		return 1
	}
	var f float64
	if ad < 1e-4 {
		// (1−e^{−x})/x loses all significant digits as x→0 (the subtraction
		// cancels) and can round above 1; use the Taylor series instead,
		// accurate to < 1e-17 for x < 1e-4.
		f = 1 - ad/2 + ad*ad/6
	} else {
		// Expm1 keeps the small-x difference exact where Exp would round.
		f = -math.Expm1(-ad) / ad
	}
	y := f * f
	if y > 1 {
		y = 1
	}
	if y <= 0 {
		y = math.SmallestNonzeroFloat64
	}
	return y
}

// PoissonYield is the Poisson model: Y = e^{−AD}.
type PoissonYield struct{}

// Name implements YieldModel.
func (PoissonYield) Name() string { return "poisson" }

// Yield implements YieldModel.
func (PoissonYield) Yield(area units.Area, d float64) float64 {
	ad := area.CM2() * d
	if ad <= 0 {
		return 1
	}
	return math.Exp(-ad)
}

// SeedsYield is the Seeds model: Y = 1/(1 + AD).
type SeedsYield struct{}

// Name implements YieldModel.
func (SeedsYield) Name() string { return "seeds" }

// Yield implements YieldModel.
func (SeedsYield) Yield(area units.Area, d float64) float64 {
	ad := area.CM2() * d
	if ad <= 0 {
		return 1
	}
	return 1 / (1 + ad)
}

// BoseEinsteinYield is the Bose–Einstein model with n critical layers:
// Y = 1/(1 + AD)^n.
type BoseEinsteinYield struct {
	// CriticalLayers is the number of critical mask layers (n ≥ 1).
	CriticalLayers int
}

// Name implements YieldModel.
func (b BoseEinsteinYield) Name() string {
	return fmt.Sprintf("bose-einstein(n=%d)", b.CriticalLayers)
}

// Yield implements YieldModel.
func (b BoseEinsteinYield) Yield(area units.Area, d float64) float64 {
	ad := area.CM2() * d
	n := b.CriticalLayers
	if n < 1 {
		n = 1
	}
	if ad <= 0 {
		return 1
	}
	// Log1p avoids the 1+ad rounding that makes Pow(1+ad, -n) return
	// exactly 1 for tiny ad even when n is large.
	return math.Exp(-float64(n) * math.Log1p(ad))
}

// YieldModels returns the supported models.
func YieldModels() []YieldModel {
	return []YieldModel{MurphyYield{}, PoissonYield{}, SeedsYield{}, BoseEinsteinYield{CriticalLayers: 10}}
}

// YieldModelNames lists the registry names YieldByName accepts.
func YieldModelNames() []string {
	return []string{"murphy", "poisson", "seeds", "bose-einstein"}
}

// YieldByName resolves a yield model by registry name. The empty string
// selects Murphy — the pipeline's historical default. Bose–Einstein uses the
// standard 10 critical layers.
func YieldByName(name string) (YieldModel, error) {
	switch name {
	case "", "murphy":
		return MurphyYield{}, nil
	case "poisson":
		return PoissonYield{}, nil
	case "seeds":
		return SeedsYield{}, nil
	case "bose-einstein":
		return BoseEinsteinYield{CriticalLayers: 10}, nil
	}
	return nil, fmt.Errorf("carbon: unknown yield model %q (try one of %v)", name, YieldModelNames())
}

// Wafer describes a round wafer for die placement.
type Wafer struct {
	// Diameter in centimetres (300 mm wafer = 30 cm).
	Diameter float64
}

// Wafer300mm is the standard 300 mm production wafer.
var Wafer300mm = Wafer{Diameter: 30}

// GrossDies returns the gross dies per wafer using the de Vries first-order
// formula [11]: GDW = π(d/2)²/A − πd/√(2A), which accounts for edge loss.
func (w Wafer) GrossDies(die units.Area) (float64, error) {
	a := die.CM2()
	if a <= 0 {
		return 0, fmt.Errorf("carbon: die area must be positive, got %v", die)
	}
	r := w.Diameter / 2
	gdw := math.Pi*r*r/a - math.Pi*w.Diameter/math.Sqrt(2*a)
	if gdw < 0 {
		gdw = 0
	}
	return math.Floor(gdw), nil
}

// GoodDies returns the expected number of functional dies per wafer under
// the given yield model.
func (w Wafer) GoodDies(die units.Area, m YieldModel, defectDensity float64) (float64, error) {
	gross, err := w.GrossDies(die)
	if err != nil {
		return 0, err
	}
	return gross * m.Yield(die, defectDensity), nil
}

// EmbodiedPerGoodDie computes embodied carbon per *functional* die: the whole
// wafer's footprint divided over its good dies. This is the per-die view of
// eq. IV.5's A/Y term with placement effects included.
func (w Wafer) EmbodiedPerGoodDie(p Process, fab Fab, die units.Area, m YieldModel) (units.Carbon, error) {
	good, err := w.GoodDies(die, m, fab.DefectDensity)
	if err != nil {
		return 0, err
	}
	if good < 1 {
		return 0, fmt.Errorf("carbon: die of %v yields no good dies per wafer", die)
	}
	r := w.Diameter / 2
	waferArea := units.Area(math.Pi * r * r)
	waferCarbon := p.CarbonPerArea(fab).Grams() * waferArea.CM2()
	return units.Carbon(waferCarbon / good), nil
}
