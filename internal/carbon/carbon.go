// Package carbon reimplements the architectural carbon accounting that
// CORDOBA builds on (paper §IV-A, eq. IV.5–IV.6): the ACT embodied-carbon
// model [22] with the updated fab characterization of [39], plus yield and
// die-placement models (§V), memory/storage embodied footprints, and
// packaging overheads for 2D and 3D-stacked systems.
//
// The published anchor point is the paper's Table III: at the 7 nm node,
// EPA = 2.15 kWh/cm², MPA = 500 gCO2e/cm², GPA = 300 gCO2e/cm², and a
// coal-heavy fab grid of CI_fab = 820 gCO2e/kWh. Other nodes follow the
// monotone trends of the imec/ACT data: energy and materials per area grow
// as nodes advance (more lithography passes, more metal layers, EUV).
package carbon

import (
	"fmt"

	"cordoba/internal/units"
)

// Process holds the per-area fab characterization of one technology node —
// the (EPA, GPA, MPA) triple of eq. IV.5.
type Process struct {
	Node string
	Nm   int

	// EPA is the fab energy per die area (kWh/cm²).
	EPA float64
	// GPA is the direct gas emissions per die area (gCO2e/cm²).
	GPA units.Carbon
	// MPA is the procured-materials footprint per die area (gCO2e/cm²).
	MPA units.Carbon
}

// Processes returns fab characterizations from 28 nm down to 3 nm. The 7 nm
// row matches the paper's Table III; the others follow the rising-intensity
// trend of advanced nodes reported in [18], [22], [39].
func Processes() []Process {
	return []Process{
		{"28nm", 28, 0.90, 150, 250},
		{"20nm", 20, 1.10, 180, 290},
		{"14nm", 14, 1.35, 210, 330},
		{"10nm", 10, 1.70, 250, 400},
		{"7nm", 7, 2.15, 300, 500},
		{"5nm", 5, 2.75, 360, 620},
		{"3nm", 3, 3.50, 430, 780},
	}
}

// ProcessByName returns the characterization for the named node.
func ProcessByName(name string) (Process, error) {
	for _, p := range Processes() {
		if p.Node == name {
			return p, nil
		}
	}
	return Process{}, fmt.Errorf("carbon: unknown process node %q", name)
}

// Process7nm returns the paper's anchor node.
func Process7nm() Process {
	p, err := ProcessByName("7nm")
	if err != nil {
		panic(err)
	}
	return p
}

// Fab describes the fabrication facility: the carbon intensity of its energy
// supply and its defect density (used by the yield models).
type Fab struct {
	Name string
	// CI is the fab grid's carbon intensity (CI_fab).
	CI units.CarbonIntensity
	// DefectDensity is defects per cm² for yield modelling.
	DefectDensity float64
}

// Reference fabs. CI values follow the grid mixes ACT reports: a coal-heavy
// grid at 820 g/kWh (the paper's example), the Taiwanese and Korean grids,
// and a fully renewable-powered fab.
var (
	FabCoal      = Fab{"coal-heavy", 820, 0.1}
	FabTaiwan    = Fab{"taiwan", 509, 0.1}
	FabKorea     = Fab{"korea", 415, 0.1}
	FabRenewable = Fab{"renewable", 30, 0.1}
)

// Fabs returns the reference fabs, dirtiest grid first.
func Fabs() []Fab {
	return []Fab{FabCoal, FabTaiwan, FabKorea, FabRenewable}
}

// FabByName returns the reference fab with the given name.
func FabByName(name string) (Fab, error) {
	for _, f := range Fabs() {
		if f.Name == name {
			return f, nil
		}
	}
	return Fab{}, fmt.Errorf("carbon: unknown fab %q (try one of %v)", name, fabNames())
}

func fabNames() []string {
	var names []string
	for _, f := range Fabs() {
		names = append(names, f.Name)
	}
	return names
}

// EmbodiedDie computes eq. IV.5 for a single die:
//
//	C_embodied = (CI_fab·EPA + MPA + GPA) · A / Y
//
// area is the die area and y the fabrication yield in (0, 1].
func (p Process) EmbodiedDie(fab Fab, area units.Area, y float64) (units.Carbon, error) {
	if y <= 0 || y > 1 {
		return 0, fmt.Errorf("carbon: yield must be in (0,1], got %v", y)
	}
	if area < 0 {
		return 0, fmt.Errorf("carbon: negative die area %v", area)
	}
	perArea := p.CarbonPerArea(fab)
	return units.Carbon(perArea.Grams() * area.CM2() / y), nil
}

// CarbonPerArea returns the embodied carbon per cm² before yield derating:
// CI_fab·EPA + MPA + GPA.
func (p Process) CarbonPerArea(fab Fab) units.Carbon {
	fabEnergy := fab.CI.Of(units.KWh(p.EPA))
	return fabEnergy + p.MPA + p.GPA
}

// EmbodiedSplit decomposes eq. IV.5 into the part that scales with the fab
// grid's carbon intensity and the part that does not:
//
//	C_embodied = CI_fab·(EPA·A/Y) + (MPA + GPA)·A/Y
//	           = CI_fab·fabEnergy + materials
//
// fabEnergy is in kWh. The split is what lets designers eliminate designs
// when CI_fab itself is unknown (§IV-B's closing remark); see
// uncertainty.SurvivorsUnknownFab.
func (p Process) EmbodiedSplit(area units.Area, y float64) (fabEnergy units.Energy, materials units.Carbon, err error) {
	if y <= 0 || y > 1 {
		return 0, 0, fmt.Errorf("carbon: yield must be in (0,1], got %v", y)
	}
	if area < 0 {
		return 0, 0, fmt.Errorf("carbon: negative die area %v", area)
	}
	scaled := area.CM2() / y
	return units.KWh(p.EPA * scaled), (p.MPA + p.GPA) * units.Carbon(scaled), nil
}

// Operational computes eq. IV.6: use-phase carbon for total energy e drawn
// from a grid with intensity ci.
func Operational(ci units.CarbonIntensity, e units.Energy) units.Carbon {
	return ci.Of(e)
}

// GridSource is a use-phase energy source with its lifecycle carbon
// intensity (IPCC median values, gCO2e/kWh).
type GridSource struct {
	Name string
	CI   units.CarbonIntensity
}

// Use-phase grid sources for CI_use sweeps.
var (
	SourceCoal      = GridSource{"coal", 820}
	SourceGas       = GridSource{"gas", 490}
	SourceWorldAvg  = GridSource{"world-average", 475}
	SourcePaper     = GridSource{"paper-example", 380} // Table III's CI_use
	SourceSolar     = GridSource{"solar", 41}
	SourceHydro     = GridSource{"hydro", 24}
	SourceNuclear   = GridSource{"nuclear", 12}
	SourceWind      = GridSource{"wind", 11}
	SourceGeotherma = GridSource{"geothermal", 38}
)

// GridSources returns all reference sources, highest intensity first.
func GridSources() []GridSource {
	return []GridSource{
		SourceCoal, SourceGas, SourceWorldAvg, SourcePaper,
		SourceSolar, SourceGeotherma, SourceHydro, SourceNuclear, SourceWind,
	}
}
