package carbon

import (
	"math"
	"strings"
	"testing"

	"cordoba/internal/units"
)

func monoSpec(area units.Area) DesignSpec {
	return DesignSpec{
		Name: "mono",
		Fab:  FabCoal,
		Dies: []DieSpec{{Name: "die", Area: area, Process: Process7nm()}},
	}
}

func TestModelRegistry(t *testing.T) {
	if got := DefaultModel().Name(); got != "act" {
		t.Fatalf("default model = %q, want act", got)
	}
	names := ModelNames()
	if len(names) < 3 {
		t.Fatalf("registry lists %d backends, want >= 3", len(names))
	}
	for _, name := range names {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := ModelByName(""); err != nil || m.Name() != "act" {
		t.Errorf("empty name should select act, got %v, %v", m, err)
	}
	if _, err := ModelByName("magic"); err == nil {
		t.Error("unknown model should error")
	} else if !strings.Contains(err.Error(), "act") {
		t.Errorf("error should suggest registry names: %v", err)
	}
	infos := ModelInfos()
	if len(infos) != len(names) {
		t.Fatalf("ModelInfos has %d entries, registry has %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("info %d name = %q, registry = %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
}

func TestACTModelMatchesEmbodiedDie(t *testing.T) {
	// A single unpackaged die through the ACT backend must equal the raw
	// eq. IV.5 helper exactly.
	area := units.Area(2.25)
	spec := monoSpec(area)
	bd, err := ACTModel{}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	y := MurphyYield{}.Yield(area, FabCoal.DefectDensity)
	want, err := Process7nm().EmbodiedDie(FabCoal, area, y)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total != want {
		t.Errorf("ACT single die = %v, EmbodiedDie = %v", bd.Total, want)
	}
	if bd.Bonding != 0 {
		t.Errorf("ACT reports bonding carbon %v, want 0", bd.Bonding)
	}
	if len(bd.Dies) != 1 || bd.Dies[0].Yield != y {
		t.Errorf("die entry = %+v, want yield %v", bd.Dies, y)
	}
}

func TestACTModelFixedYieldOverride(t *testing.T) {
	spec := monoSpec(2)
	spec.Dies[0].Yield = 0.5
	bd, err := ACTModel{}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Process7nm().EmbodiedDie(FabCoal, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total != want {
		t.Errorf("fixed yield 0.5: got %v want %v", bd.Total, want)
	}
}

func TestDesignSpecValidation(t *testing.T) {
	for name, spec := range map[string]DesignSpec{
		"no dies":        {Name: "x", Fab: FabCoal},
		"negative count": {Name: "x", Fab: FabCoal, Dies: []DieSpec{{Area: 1, Process: Process7nm(), Count: -1}}},
		"bad yield":      {Name: "x", Fab: FabCoal, Dies: []DieSpec{{Area: 1, Process: Process7nm(), Yield: 1.5}}},
		"negative area":  {Name: "x", Fab: FabCoal, Dies: []DieSpec{{Area: -1, Process: Process7nm()}}},
	} {
		for _, m := range Models() {
			if _, err := m.EmbodiedDesign(spec); err == nil {
				t.Errorf("%s/%s: invalid spec accepted", m.Name(), name)
			}
		}
	}
}

// Splitting a big monolithic die into chiplets must cut the silicon term —
// the whole yield argument for disaggregation — while charging carrier and
// assembly scrap under Bonding/Packaging.
func TestChipletModelDisaggregates(t *testing.T) {
	spec := monoSpec(6) // 6 cm²: yield pain is severe
	act, err := ACTModel{}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChipletModel{Split: 4}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Silicon >= act.Silicon {
		t.Errorf("4-way split silicon %v should beat monolithic %v", ch.Silicon, act.Silicon)
	}
	if ch.Bonding <= 0 {
		t.Errorf("chiplet assembly scrap should be positive, got %v", ch.Bonding)
	}
	if len(ch.Dies) != 1 || ch.Dies[0].Count != 4 {
		t.Errorf("expected one 4-count chiplet entry, got %+v", ch.Dies)
	}
	near(t, "chiplet area", ch.Dies[0].Area.CM2(), 6.0/4*1.05, 1e-12)
	if got := ch.Total; got != ch.Silicon+ch.Packaging+ch.Bonding {
		t.Errorf("components do not sum: %+v", ch)
	}
}

// Multi-die specs are priced chiplet-per-die as given, not re-partitioned.
func TestChipletModelKeepsExplicitDies(t *testing.T) {
	spec := DesignSpec{
		Name: "hetero",
		Fab:  FabCoal,
		Dies: []DieSpec{
			{Name: "logic", Area: 1.0, Process: Process7nm()},
			{Name: "io", Area: 0.5, Process: Processes()[0]}, // mature node
		},
	}
	bd, err := ChipletModel{}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Dies) != 2 {
		t.Fatalf("expected the spec's own 2 dies, got %+v", bd.Dies)
	}
	if bd.Dies[0].Name != "logic" || bd.Dies[1].Name != "io" {
		t.Errorf("die names changed: %+v", bd.Dies)
	}
}

func TestChipletCarrierTechOrdering(t *testing.T) {
	spec := monoSpec(4)
	var totals []float64
	for _, tech := range []PackagingTech{RDLFanout, EMIB, SiliconInterposer} {
		bd, err := ChipletModel{Tech: tech}.EmbodiedDesign(spec)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		totals = append(totals, bd.Total.Grams())
	}
	// A full silicon interposer is the most expensive carrier; EMIB's
	// bridge slivers cost a tenth of it.
	if !(totals[2] > totals[1]) {
		t.Errorf("interposer (%v) should exceed EMIB (%v)", totals[2], totals[1])
	}
}

func TestStacked3DModelSplitsTiers(t *testing.T) {
	spec := monoSpec(4)
	bd, err := Stacked3DModel{Tiers: 2}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Dies) != 1 || bd.Dies[0].Count != 2 {
		t.Fatalf("expected one 2-count tier entry, got %+v", bd.Dies)
	}
	near(t, "tier area", bd.Dies[0].Area.CM2(), 4.0/2*1.08, 1e-12)
	if bd.Bonding <= 0 {
		t.Errorf("stacking must charge bonding carbon, got %v", bd.Bonding)
	}
	// Bonding = interface-yield scrap + per-interface bond energy.
	scrap := bd.Silicon.Grams() * (1/0.99 - 1)
	energy := FabCoal.CI.Of(units.KWh(0.05 * bd.Dies[0].Area.CM2())).Grams()
	near(t, "bonding", bd.Bonding.Grams(), scrap+energy, 1e-12)
}

// A spec that already enumerates a stack (Stacked flag) is bonded as given —
// this is the path 3D accel configs take.
func TestStacked3DModelHonorsStackedSpec(t *testing.T) {
	spec := DesignSpec{
		Name:    "stack",
		Fab:     FabCoal,
		Stacked: true,
		Dies: []DieSpec{
			{Name: "logic", Area: 1.0, Process: Process7nm()},
			{Name: "mem", Area: 0.8, Process: Process7nm(), Count: 3},
		},
	}
	bd, err := Stacked3DModel{}.EmbodiedDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Dies) != 2 {
		t.Fatalf("stacked spec re-partitioned: %+v", bd.Dies)
	}
	// 4 tiers → 3 bonded interfaces, each overlapping 0.8 cm².
	energy := FabCoal.CI.Of(units.KWh(0.05 * 0.8 * 3)).Grams()
	scrap := bd.Silicon.Grams() * (1/math.Pow(0.99, 3) - 1)
	near(t, "bonding", bd.Bonding.Grams(), scrap+energy, 1e-12)
}

// More tiers trade silicon (smaller dies yield better) against bonding risk;
// the totals must stay finite, positive, and self-consistent everywhere.
func TestBackendsSelfConsistent(t *testing.T) {
	areas := []units.Area{0.1, 1, 3, 6}
	for _, m := range Models() {
		for _, a := range areas {
			bd, err := m.EmbodiedDesign(monoSpec(a))
			if err != nil {
				t.Fatalf("%s/%v: %v", m.Name(), a, err)
			}
			if bd.Model != m.Name() {
				t.Errorf("%s: breakdown labelled %q", m.Name(), bd.Model)
			}
			total := bd.Total.Grams()
			if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
				t.Errorf("%s/%v: degenerate total %v", m.Name(), a, total)
			}
			near(t, m.Name()+" sum", total,
				bd.Silicon.Grams()+bd.Packaging.Grams()+bd.Bonding.Grams(), 1e-12)
			for _, d := range bd.Dies {
				if d.Yield <= 0 || d.Yield > 1 {
					t.Errorf("%s/%v: die yield %v out of range", m.Name(), a, d.Yield)
				}
			}
		}
	}
}

func TestYieldRegistry(t *testing.T) {
	names := YieldModelNames()
	if len(names) != 4 {
		t.Fatalf("yield registry = %v, want 4 entries", names)
	}
	for _, name := range names {
		ym, err := YieldByName(name)
		if err != nil {
			t.Fatalf("YieldByName(%q): %v", name, err)
		}
		if y := ym.Yield(1.0, 0.1); y <= 0 || y > 1 {
			t.Errorf("%s: yield(1cm², 0.1/cm²) = %v out of range", name, y)
		}
	}
	if ym, err := YieldByName(""); err != nil || ym.Name() != "murphy" {
		t.Errorf("empty name should select murphy, got %v, %v", ym, err)
	}
	if _, err := YieldByName("optimism"); err == nil {
		t.Error("unknown yield model should error")
	}
}
