package carbon

import (
	"fmt"

	"cordoba/internal/units"
)

// Component is one line of a device's bill of materials: either a silicon
// die (priced through eq. IV.5) or a fixed-footprint part (battery, display,
// enclosure — the categories device LCA reports itemize).
type Component struct {
	Name string

	// Die components: area, process, yield.
	Die     units.Area
	Process Process
	Yield   float64

	// Memory components: kind and capacity.
	Memory   MemoryKind
	MemoryGB float64

	// Fixed is a directly specified footprint (display, battery,
	// enclosure, transport) taken from an LCA report.
	Fixed units.Carbon
}

// System is a whole device: the ACT-style sum of component footprints that
// the paper's eq. IV.3 selects from with its inclusion mask.
type System struct {
	Name       string
	Fab        Fab
	Components []Component
}

// ComponentEmbodied returns one component's embodied footprint.
func (s *System) ComponentEmbodied(c Component) (units.Carbon, error) {
	switch {
	case c.Die > 0:
		y := c.Yield
		if y == 0 {
			y = 1
		}
		return c.Process.EmbodiedDie(s.Fab, c.Die, y)
	case c.MemoryGB > 0:
		return EmbodiedMemory(c.Memory, c.MemoryGB)
	case c.Fixed >= 0:
		return c.Fixed, nil
	default:
		return 0, fmt.Errorf("carbon: component %q has no footprint specification", c.Name)
	}
}

// Embodied returns the system's total embodied carbon with every component
// included.
func (s *System) Embodied() (units.Carbon, error) {
	return s.EmbodiedMasked(nil)
}

// EmbodiedMasked computes eq. IV.3's dot product: include[i] selects whether
// component i is counted (nil includes everything). This is the
// hardware-provisioning formulation of §VI-D generalized to a whole BOM.
func (s *System) EmbodiedMasked(include []bool) (units.Carbon, error) {
	if include != nil && len(include) != len(s.Components) {
		return 0, fmt.Errorf("carbon: mask has %d entries for %d components", len(include), len(s.Components))
	}
	var total units.Carbon
	for i, c := range s.Components {
		if include != nil && !include[i] {
			continue
		}
		e, err := s.ComponentEmbodied(c)
		if err != nil {
			return 0, fmt.Errorf("carbon: system %q: %w", s.Name, err)
		}
		total += e
	}
	return total, nil
}

// ReferenceVRHeadset returns a Quest 2-class device BOM: the 7 nm SoC,
// LPDDR memory, NAND storage, and fixed footprints for display, battery,
// enclosure and assembly (magnitudes follow published consumer-device LCA
// breakdowns, where the electronics dominate).
func ReferenceVRHeadset() *System {
	return &System{
		Name: "vr-headset",
		Fab:  FabCoal,
		Components: []Component{
			{Name: "soc", Die: units.Area(2.25), Process: Process7nm(), Yield: 0.98},
			{Name: "lpddr", Memory: LPDDR, MemoryGB: 6},
			{Name: "nand", Memory: NANDFlash, MemoryGB: 128},
			{Name: "display", Fixed: 9000},
			{Name: "battery", Fixed: 3500},
			{Name: "enclosure+assembly", Fixed: 6000},
		},
	}
}
