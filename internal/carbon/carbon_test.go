package carbon

import (
	"math"
	"testing"
	"testing/quick"

	"cordoba/internal/units"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-30) {
		t.Errorf("%s: got %v want %v", name, got, want)
	}
}

func TestProcess7nmMatchesTableIII(t *testing.T) {
	p := Process7nm()
	near(t, "EPA", p.EPA, 2.15, 1e-12)
	near(t, "GPA", p.GPA.Grams(), 300, 1e-12)
	near(t, "MPA", p.MPA.Grams(), 500, 1e-12)
	near(t, "CI_fab", FabCoal.CI.GramsPerKWh(), 820, 1e-12)
}

func TestProcessesMonotone(t *testing.T) {
	ps := Processes()
	for i := 1; i < len(ps); i++ {
		if ps[i].Nm >= ps[i-1].Nm {
			t.Errorf("nodes out of order at %s", ps[i].Node)
		}
		if ps[i].EPA <= ps[i-1].EPA {
			t.Errorf("%s: EPA should rise as nodes advance", ps[i].Node)
		}
		if ps[i].MPA <= ps[i-1].MPA {
			t.Errorf("%s: MPA should rise as nodes advance", ps[i].Node)
		}
		if ps[i].GPA <= ps[i-1].GPA {
			t.Errorf("%s: GPA should rise as nodes advance", ps[i].Node)
		}
	}
}

func TestProcessByName(t *testing.T) {
	if _, err := ProcessByName("7nm"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProcessByName("1nm"); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestEmbodiedDieEquationIV5(t *testing.T) {
	// Hand-computed eq. IV.5 at the Table III anchor:
	// (820·2.15 + 500 + 300) · 2.25 / 0.98 = 2563 · 2.2959 = 5884.6 g.
	p := Process7nm()
	got, err := p.EmbodiedDie(FabCoal, units.Area(2.25), 0.98)
	if err != nil {
		t.Fatal(err)
	}
	want := (820*2.15 + 500 + 300) * 2.25 / 0.98
	near(t, "C_embodied", got.Grams(), want, 1e-12)
}

func TestEmbodiedDieValidation(t *testing.T) {
	p := Process7nm()
	if _, err := p.EmbodiedDie(FabCoal, 1, 0); err == nil {
		t.Error("yield 0 should error")
	}
	if _, err := p.EmbodiedDie(FabCoal, 1, 1.2); err == nil {
		t.Error("yield >1 should error")
	}
	if _, err := p.EmbodiedDie(FabCoal, -1, 0.9); err == nil {
		t.Error("negative area should error")
	}
}

func TestEmbodiedScalesWithFabCI(t *testing.T) {
	p := Process7nm()
	coal, _ := p.EmbodiedDie(FabCoal, 1, 1)
	ren, _ := p.EmbodiedDie(FabRenewable, 1, 1)
	if ren >= coal {
		t.Errorf("renewable fab (%v) should beat coal fab (%v)", ren, coal)
	}
	// Even a zero-carbon grid leaves the GPA+MPA floor.
	if ren.Grams() < (p.GPA + p.MPA).Grams() {
		t.Errorf("embodied %v below the materials+gases floor", ren)
	}
}

func TestOperational(t *testing.T) {
	// Table V: 332 J per task at 380 g/kWh.
	c := Operational(380, 332)
	near(t, "C_op", c.Grams(), 380*332/3.6e6, 1e-12)
}

func TestGridSourcesOrdered(t *testing.T) {
	ss := GridSources()
	if len(ss) < 5 {
		t.Fatalf("too few sources: %d", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].CI > ss[i-1].CI {
			t.Errorf("sources not in descending CI order at %s", ss[i].Name)
		}
	}
}

// ---- yield models ----

func TestYieldModelsAtZeroDefects(t *testing.T) {
	for _, m := range YieldModels() {
		if y := m.Yield(1, 0); y != 1 {
			t.Errorf("%s: yield at zero defects = %v, want 1", m.Name(), y)
		}
		if m.Name() == "" {
			t.Error("empty model name")
		}
	}
}

func TestYieldModelsDecreasingInArea(t *testing.T) {
	for _, m := range YieldModels() {
		prev := 1.0
		for _, a := range []float64{0.1, 0.5, 1, 2, 5} {
			y := m.Yield(units.Area(a), 0.1)
			if y > prev {
				t.Errorf("%s: yield increased at area %v", m.Name(), a)
			}
			if y <= 0 || y > 1 {
				t.Errorf("%s: yield out of range: %v", m.Name(), y)
			}
			prev = y
		}
	}
}

// Known ordering at moderate AD: Poisson is most pessimistic, Seeds most
// optimistic, Murphy in between.
func TestYieldModelOrdering(t *testing.T) {
	a, d := units.Area(1.0), 0.5
	poisson := PoissonYield{}.Yield(a, d)
	murphy := MurphyYield{}.Yield(a, d)
	seeds := SeedsYield{}.Yield(a, d)
	if !(poisson < murphy && murphy < seeds) {
		t.Errorf("ordering violated: poisson=%v murphy=%v seeds=%v", poisson, murphy, seeds)
	}
}

func TestMurphyKnownValue(t *testing.T) {
	// AD=1: ((1-e^-1)/1)² = 0.39958.
	near(t, "murphy(AD=1)", MurphyYield{}.Yield(1, 1), 0.39958, 1e-4)
}

// Regression: (1−e^{−AD})/AD in plain float64 cancels catastrophically as
// AD→0 and could round above 1. The series path must keep the yield in
// (0, 1], strictly below 1 for any positive AD, and continuous across the
// series/expm1 switchover.
func TestMurphyTinyADNoCancellation(t *testing.T) {
	m := MurphyYield{}
	prev := 1.0
	for _, ad := range []float64{1e-18, 1e-15, 1e-12, 1e-9, 1e-6, 1e-4, 1.0000001e-4, 1e-3, 1e-2} {
		y := m.Yield(units.Area(ad), 1)
		if y > 1 || y <= 0 || math.IsNaN(y) {
			t.Fatalf("AD=%g: yield %v out of (0,1]", ad, y)
		}
		if y > prev {
			t.Errorf("AD=%g: yield %v increased from %v", ad, y, prev)
		}
		// First-order check: Y ≈ 1 − AD for small AD.
		if want := 1 - ad; math.Abs(y-want) > 1e-8*want+ad*ad {
			t.Errorf("AD=%g: yield %v, want ≈ %v", ad, y, want)
		}
		prev = y
	}
	// Continuity at the switchover: both branches agree to near rounding.
	lo, hi := m.Yield(units.Area(math.Nextafter(1e-4, 0)), 1), m.Yield(units.Area(1e-4), 1)
	if math.Abs(lo-hi) > 1e-12 {
		t.Errorf("discontinuity at series switchover: %v vs %v", lo, hi)
	}
}

// Regression: Pow(1+AD, −n) evaluates 1+AD first and returns exactly 1 for
// AD below the rounding threshold even with many critical layers; the
// Log1p path must stay strictly below 1.
func TestBoseEinsteinTinyAD(t *testing.T) {
	b := BoseEinsteinYield{CriticalLayers: 10}
	// 1+AD rounds to exactly 1 for AD ≤ 1e-16, so Pow(1+AD, −n) would
	// return 1 at the first value; n·AD is still representable below 1.
	for _, ad := range []float64{1e-16, 1e-14, 1e-10} {
		y := b.Yield(units.Area(ad), 1)
		if !(y < 1) || y <= 0 {
			t.Errorf("AD=%g: yield %v, want strictly inside (0,1)", ad, y)
		}
		// Y = e^{−n·log1p(AD)} ≈ 1 − n·AD for tiny AD.
		if want := 1 - 10*ad; math.Abs(y-want) > 1e-12 {
			t.Errorf("AD=%g: yield %v, want ≈ %v", ad, y, want)
		}
	}
}

func TestBoseEinsteinLayers(t *testing.T) {
	b1 := BoseEinsteinYield{CriticalLayers: 1}
	b5 := BoseEinsteinYield{CriticalLayers: 5}
	if b5.Yield(1, 0.5) >= b1.Yield(1, 0.5) {
		t.Error("more critical layers should reduce yield")
	}
	// n<1 clamps to 1 rather than inflating yield.
	b0 := BoseEinsteinYield{CriticalLayers: 0}
	near(t, "clamped n", b0.Yield(1, 0.5), b1.Yield(1, 0.5), 1e-12)
	// Seeds is the n=1 special case.
	near(t, "seeds equivalence", b1.Yield(2, 0.3), SeedsYield{}.Yield(2, 0.3), 1e-12)
}

// Property: all yields are within (0, 1] for any positive area and density.
func TestYieldRangeProperty(t *testing.T) {
	f := func(a, d uint16) bool {
		area := units.Area(0.01 + float64(a%500)/100)
		dd := float64(d%300) / 100
		for _, m := range YieldModels() {
			y := m.Yield(area, dd)
			if y <= 0 || y > 1 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- wafer / die placement ----

func TestGrossDies(t *testing.T) {
	// 1 cm² dies on a 300 mm wafer: π·225/1 − π·30/√2 = 706.9 − 66.6 ≈ 640.
	g, err := Wafer300mm.GrossDies(1)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "gross dies", g, 640, 1e-2)
	if g != math.Floor(g) {
		t.Error("gross dies should be an integer count")
	}
}

func TestGrossDiesErrors(t *testing.T) {
	if _, err := Wafer300mm.GrossDies(0); err == nil {
		t.Error("zero area should error")
	}
	// A die bigger than the wafer yields zero.
	g, err := Wafer300mm.GrossDies(1000)
	if err != nil || g != 0 {
		t.Errorf("huge die: g=%v err=%v", g, err)
	}
}

func TestGoodDiesAndPerDieEmbodied(t *testing.T) {
	p := Process7nm()
	good, err := Wafer300mm.GoodDies(1, MurphyYield{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gross, _ := Wafer300mm.GrossDies(1)
	if good >= gross || good <= 0 {
		t.Errorf("good dies %v should be within (0, %v)", good, gross)
	}
	perDie, err := Wafer300mm.EmbodiedPerGoodDie(p, FabCoal, 1, MurphyYield{})
	if err != nil {
		t.Fatal(err)
	}
	// Per-die embodied must exceed the yield-free per-area cost because the
	// whole wafer (including edge waste and bad dies) is amortized.
	floor := p.CarbonPerArea(FabCoal)
	if perDie <= floor {
		t.Errorf("per-good-die %v should exceed per-area floor %v", perDie, floor)
	}
	if _, err := Wafer300mm.EmbodiedPerGoodDie(p, FabCoal, 1000, MurphyYield{}); err == nil {
		t.Error("un-manufacturable die should error")
	}
}

// Property: larger dies always cost more embodied carbon per good die.
func TestPerGoodDieMonotoneProperty(t *testing.T) {
	p := Process7nm()
	f := func(a, b uint8) bool {
		a1 := 0.2 + 3*float64(a)/255
		a2 := 0.2 + 3*float64(b)/255
		lo, hi := math.Min(a1, a2), math.Max(a1, a2)
		if hi-lo < 1e-6 {
			return true
		}
		cLo, err1 := Wafer300mm.EmbodiedPerGoodDie(p, FabCoal, units.Area(lo), MurphyYield{})
		cHi, err2 := Wafer300mm.EmbodiedPerGoodDie(p, FabCoal, units.Area(hi), MurphyYield{})
		return err1 == nil && err2 == nil && cLo < cHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- memory & packaging ----

func TestEmbodiedMemory(t *testing.T) {
	d, err := EmbodiedMemory(DRAM, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("DRAM footprint should be positive")
	}
	h, _ := EmbodiedMemory(HBM, 16)
	n, _ := EmbodiedMemory(NANDFlash, 16)
	hd, _ := EmbodiedMemory(HDD, 16)
	if !(h > d && d > n && n > hd) {
		t.Errorf("expected HBM > DRAM > NAND > HDD per GB: %v %v %v %v", h, d, n, hd)
	}
	if _, err := EmbodiedMemory(MemoryKind(99), 1); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := EmbodiedMemory(DRAM, -1); err == nil {
		t.Error("negative capacity should error")
	}
	if MemoryKind(99).String() != "MemoryKind(99)" {
		t.Error("unknown kind String")
	}
	for k := DRAM; k <= HDD; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestPackagingAssembly(t *testing.T) {
	c1, err := DefaultPackaging.Assembly(1)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "single die", c1.Grams(), DefaultPackaging.PerDie.Grams(), 1e-12)
	c5, _ := DefaultPackaging.Assembly(5)
	want := DefaultPackaging.PerDie + 4*DefaultPackaging.PerBond
	near(t, "5-die stack", c5.Grams(), want.Grams(), 1e-12)
	if _, err := DefaultPackaging.Assembly(0); err == nil {
		t.Error("0-die package should error")
	}
}

// ---- system BOM ----

func TestSystemEmbodied(t *testing.T) {
	sys := ReferenceVRHeadset()
	total, err := sys.Embodied()
	if err != nil {
		t.Fatal(err)
	}
	// Consumer-device scale: tens of kg CO2e.
	if total < 15e3 || total > 80e3 {
		t.Errorf("headset embodied = %v, expected tens of kgCO2e", total)
	}
	// Component sum equals the total.
	var sum units.Carbon
	for _, c := range sys.Components {
		e, err := sys.ComponentEmbodied(c)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Errorf("component %s has non-positive footprint", c.Name)
		}
		sum += e
	}
	near(t, "component sum", sum.Grams(), total.Grams(), 1e-12)
}

func TestSystemEmbodiedMasked(t *testing.T) {
	sys := ReferenceVRHeadset()
	all, _ := sys.Embodied()
	// Drop the display: total decreases by exactly its fixed footprint.
	mask := make([]bool, len(sys.Components))
	var displayCarbon units.Carbon
	for i, c := range sys.Components {
		mask[i] = c.Name != "display"
		if c.Name == "display" {
			displayCarbon = c.Fixed
		}
	}
	masked, err := sys.EmbodiedMasked(mask)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "masked", masked.Grams(), all.Grams()-displayCarbon.Grams(), 1e-12)
	// Bad mask length errors.
	if _, err := sys.EmbodiedMasked([]bool{true}); err == nil {
		t.Error("mask length mismatch should error")
	}
}

func TestSystemComponentValidation(t *testing.T) {
	sys := &System{Name: "bad", Fab: FabCoal, Components: []Component{{Name: "ghost", Fixed: -1}}}
	if _, err := sys.Embodied(); err == nil {
		t.Error("unspecified component should error")
	}
	// Die with default yield uses 1.
	die := &System{Name: "d", Fab: FabCoal, Components: []Component{
		{Name: "chip", Die: 1, Process: Process7nm()},
	}}
	got, err := die.Embodied()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Process7nm().EmbodiedDie(FabCoal, 1, 1)
	near(t, "default yield", got.Grams(), want.Grams(), 1e-12)
}
