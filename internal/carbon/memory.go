package carbon

import (
	"fmt"

	"cordoba/internal/units"
)

// MemoryKind identifies a memory or storage technology with a per-capacity
// embodied footprint, following ACT's "carbon per storage" tables [22].
type MemoryKind int

// Supported memory/storage technologies.
const (
	DRAM MemoryKind = iota
	LPDDR
	HBM
	NANDFlash
	HDD
)

// String returns the technology name.
func (k MemoryKind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case LPDDR:
		return "LPDDR"
	case HBM:
		return "HBM"
	case NANDFlash:
		return "NAND"
	case HDD:
		return "HDD"
	default:
		return fmt.Sprintf("MemoryKind(%d)", int(k))
	}
}

// carbonPerGB is the embodied footprint per usable gigabyte, in gCO2e/GB.
// DRAM-class values follow ACT's ~0.15–0.6 kgCO2e/GB range (HBM highest due
// to stacking and TSV processing); NAND ~0.03 kg/GB; HDD ~0.015 kg/GB.
var carbonPerGB = map[MemoryKind]units.Carbon{
	DRAM:      230,
	LPDDR:     260,
	HBM:       550,
	NANDFlash: 31,
	HDD:       15,
}

// EmbodiedMemory returns the embodied carbon of a memory or storage part of
// the given usable capacity.
func EmbodiedMemory(kind MemoryKind, capacityGB float64) (units.Carbon, error) {
	per, ok := carbonPerGB[kind]
	if !ok {
		return 0, fmt.Errorf("carbon: unknown memory kind %v", kind)
	}
	if capacityGB < 0 {
		return 0, fmt.Errorf("carbon: negative capacity %v GB", capacityGB)
	}
	return per * units.Carbon(capacityGB), nil
}

// Packaging models the assembly/packaging footprint of a part.
type Packaging struct {
	// PerDie is the fixed overhead of packaging one die (substrate,
	// bumping, molding). ACT uses ~150 gCO2e per packaged part.
	PerDie units.Carbon
	// PerBond is the additional overhead per 3D hybrid-bonding interface
	// between vertically adjacent dice (TSV reveal, bonding).
	PerBond units.Carbon
}

// DefaultPackaging is the packaging model used by the accelerator studies.
var DefaultPackaging = Packaging{PerDie: 150, PerBond: 30}

// Assembly returns the packaging footprint of a stack of n dice: one package
// plus n−1 bonding interfaces. n must be at least 1.
func (p Packaging) Assembly(dice int) (units.Carbon, error) {
	if dice < 1 {
		return 0, fmt.Errorf("carbon: a package needs at least one die, got %d", dice)
	}
	return p.PerDie + p.PerBond*units.Carbon(dice-1), nil
}
