package carbon

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// PackagingTech selects the 2.5D carrier technology of a chiplet assembly.
type PackagingTech int

const (
	// RDLFanout is an organic redistribution-layer fanout package: no
	// silicon carrier, the cheapest integration.
	RDLFanout PackagingTech = iota
	// SiliconInterposer is a full-area passive silicon interposer priced
	// like mature-node silicon.
	SiliconInterposer
	// EMIB uses small embedded silicon bridges under die edges only.
	EMIB
)

// String returns the technology name.
func (t PackagingTech) String() string {
	switch t {
	case RDLFanout:
		return "rdl-fanout"
	case SiliconInterposer:
		return "silicon-interposer"
	case EMIB:
		return "emib"
	default:
		return fmt.Sprintf("PackagingTech(%d)", int(t))
	}
}

// Carriers lists the registered 2.5D carrier technologies.
func Carriers() []PackagingTech {
	return []PackagingTech{RDLFanout, SiliconInterposer, EMIB}
}

// CarrierNames lists the carrier technology names.
func CarrierNames() []string {
	techs := Carriers()
	names := make([]string, len(techs))
	for i, t := range techs {
		names[i] = t.String()
	}
	return names
}

// CarrierByName resolves a carrier technology by name; the empty string
// selects the default (RDL fanout).
func CarrierByName(name string) (PackagingTech, error) {
	switch name {
	case "", "rdl-fanout":
		return RDLFanout, nil
	case "silicon-interposer":
		return SiliconInterposer, nil
	case "emib":
		return EMIB, nil
	}
	return 0, fmt.Errorf("carbon: unknown carrier technology %q (try one of %v)", name, CarrierNames())
}

// Chiplet-carrier constants, following the ECO-CHIP characterization
// [Sudarshan et al., arXiv:2306.09434]: an organic RDL build-up carries a
// small fixed footprint per area, a silicon interposer is priced as
// mature-node (28 nm-class) silicon over the full package area, and EMIB
// pays mature-node silicon only for the bridge slivers under die edges.
const (
	// rdlCarbonPerCM2 is the embodied footprint of organic RDL build-up
	// layers (gCO2e per cm² of carrier).
	rdlCarbonPerCM2 = 75.0
	// emibBridgeFraction is the share of the carrier area occupied by
	// embedded silicon bridges.
	emibBridgeFraction = 0.10
	// chipletD2DOverhead inflates each synthesized chiplet's area for
	// die-to-die PHY and interface logic.
	chipletD2DOverhead = 1.05
	// defaultChipletSplit partitions a monolithic die into this many
	// chiplets when the spec does not already enumerate them.
	defaultChipletSplit = 4
	// defaultBondYield is the per-chiplet attach yield.
	defaultBondYield = 0.99
)

// carrierAreaOverhead returns the carrier-to-silicon area ratio per
// technology: carriers extend past the dies for routing and keep-out.
func (t PackagingTech) carrierAreaOverhead() float64 {
	if t == EMIB {
		return 1.05
	}
	return 1.10
}

// carrierCarbonPerCM2 returns the carrier's embodied footprint per cm² in
// the given fab. Silicon carriers are fabricated on the most mature
// registered node; organic RDL uses a fixed per-area constant.
func (t PackagingTech) carrierCarbonPerCM2(fab Fab) units.Carbon {
	mature := Processes()[0] // 28 nm-class carrier silicon
	switch t {
	case SiliconInterposer:
		return mature.CarbonPerArea(fab)
	case EMIB:
		return units.Carbon(emibBridgeFraction) * mature.CarbonPerArea(fab)
	default:
		return rdlCarbonPerCM2
	}
}

// ChipletModel prices an ECO-CHIP-style 2.5D chiplet disaggregation: every
// die instance is fabricated (and yielded) separately — possibly at
// heterogeneous nodes — then assembled side-by-side on a carrier. Small
// chiplets yield far better than one large die, at the cost of carrier
// carbon, per-attach packaging, and assembly-yield scrap.
//
// A spec holding a single monolithic die is first partitioned into Split
// equal chiplets (each inflated by a die-to-die interface overhead); specs
// that already enumerate several dies are priced chiplet-per-die as given.
type ChipletModel struct {
	// Split partitions a monolithic spec into this many chiplets;
	// zero selects 4.
	Split int
	// Tech selects the carrier: RDL fanout (default), full silicon
	// interposer, or EMIB bridges.
	Tech PackagingTech
	// BondYield is the per-chiplet attach yield; zero selects 0.99.
	BondYield float64
}

// Name implements Model.
func (ChipletModel) Name() string { return "chiplet" }

// split returns the effective partition factor.
func (m ChipletModel) split() int {
	if m.Split <= 0 {
		return defaultChipletSplit
	}
	return m.Split
}

// bondYield returns the effective per-attach yield.
func (m ChipletModel) bondYield() float64 {
	if m.BondYield <= 0 || m.BondYield > 1 {
		return defaultBondYield
	}
	return m.BondYield
}

// chiplets lowers the spec onto the chiplet set this backend assembles:
// either the spec's own dies, or — for a single monolithic die — a Split-way
// uniform partition with die-to-die interface overhead.
func (m ChipletModel) chiplets(spec DesignSpec) []DieSpec {
	if len(spec.Dies) == 1 && spec.Dies[0].count() == 1 && m.split() > 1 {
		d := spec.Dies[0]
		n := m.split()
		per := d.Area / units.Area(n) * units.Area(chipletD2DOverhead)
		return []DieSpec{{
			Name:    fmt.Sprintf("%s-chiplet", d.Name),
			Area:    per,
			Process: d.Process,
			Count:   n,
			Yield:   d.Yield,
		}}
	}
	return spec.Dies
}

// EmbodiedDesign implements Model.
func (m ChipletModel) EmbodiedDesign(spec DesignSpec) (Breakdown, error) {
	if err := spec.Validate(); err != nil {
		return Breakdown{}, err
	}
	tech := m.Tech
	if spec.Carrier != "" {
		t, err := CarrierByName(spec.Carrier)
		if err != nil {
			return Breakdown{}, fmt.Errorf("carbon: design %q: %w", spec.Name, err)
		}
		tech = t
	}
	dies := m.chiplets(spec)
	bd := Breakdown{Model: m.Name(), Dies: make([]DieCarbon, 0, len(dies))}

	var totalArea units.Area
	attached := 0
	for _, d := range dies {
		y := spec.dieYield(d)
		e, err := d.Process.EmbodiedDie(spec.Fab, d.Area, y)
		if err != nil {
			return Breakdown{}, fmt.Errorf("carbon: design %q chiplet %q: %w", spec.Name, d.Name, err)
		}
		count := d.count()
		batch := e * units.Carbon(count)
		bd.Silicon += batch
		bd.Dies = append(bd.Dies, DieCarbon{Name: d.Name, Area: d.Area, Count: count, Yield: y, Carbon: batch})
		totalArea += d.Area * units.Area(count)
		attached += count
	}

	// Carrier: priced per area of the (over-sized) package substrate.
	carrierArea := totalArea * units.Area(tech.carrierAreaOverhead())
	carrier := tech.carrierCarbonPerCM2(spec.Fab) * units.Carbon(carrierArea.CM2())

	// Conventional assembly constants: one package plus per-attach bonds.
	pkg, err := spec.Packaging.Assembly(attached)
	if err != nil {
		return Breakdown{}, fmt.Errorf("carbon: design %q: %w", spec.Name, err)
	}
	bd.Packaging = pkg + carrier

	// Assembly-yield scrap: a failed attach wastes the whole assembly
	// (known-good-die testing keeps fabrication loss per chiplet, but
	// bonding loss is per assembly).
	asmYield := math.Pow(m.bondYield(), float64(attached))
	bd.Bonding = units.Carbon((bd.Silicon.Grams() + carrier.Grams()) * (1/asmYield - 1))

	bd.Total = bd.Silicon + bd.Packaging + bd.Bonding
	return bd, nil
}
