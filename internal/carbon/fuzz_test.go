package carbon

import (
	"encoding/json"
	"math"
	"testing"

	"cordoba/internal/units"
)

// fuzzDesign is the wire form FuzzAccountingModel decodes: a free-form
// description of a design plus the backend and yield model to price it with.
// Unknown names exercise the registry error paths; the numeric fields are
// folded into sane ranges so the target spends its budget on the dispatch,
// partitioning and breakdown logic instead of float overflow.
type fuzzDesign struct {
	Model   string  `json:"model"`
	Yield   string  `json:"yield"`
	Fab     string  `json:"fab"`
	PerDie  float64 `json:"per_die"`
	PerBond float64 `json:"per_bond"`
	Stacked bool    `json:"stacked"`
	Dies    []struct {
		Node    string  `json:"node"`
		AreaCM2 float64 `json:"area_cm2"`
		Count   int     `json:"count"`
		Yield   float64 `json:"yield"`
	} `json:"dies"`
}

// foldArea maps an arbitrary float into [0, 64) cm² — big enough to stress
// every yield model, small enough to keep totals finite.
func foldArea(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(math.Abs(v), 64)
}

// FuzzAccountingModel drives arbitrary design specs through every registered
// embodied-carbon backend. The contract, valid spec or not: no panic, and a
// nil error implies a finite non-negative total whose components sum, with
// every resolved die yield in (0, 1].
func FuzzAccountingModel(f *testing.F) {
	f.Add(`{"model":"act","fab":"coal-heavy","dies":[{"node":"7nm","area_cm2":2.25}]}`)
	f.Add(`{"model":"chiplet","yield":"murphy","dies":[{"node":"7nm","area_cm2":6.1}],"per_die":50,"per_bond":5}`)
	f.Add(`{"model":"stacked-3d","yield":"bose-einstein","stacked":true,` +
		`"dies":[{"node":"7nm","area_cm2":1.5},{"node":"10nm","area_cm2":0.8,"count":4}]}`)
	f.Add(`{"model":"chiplet","dies":[{"node":"5nm","area_cm2":3,"yield":0.5},{"node":"28nm","area_cm2":0.4,"count":2}]}`)
	f.Add(`{"model":"magic","yield":"optimism","fab":"mars","dies":[{"node":"1nm","area_cm2":-1,"count":-3,"yield":1.5}]}`)
	f.Add(`{"model":"stacked-3d","dies":[]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, body string) {
		var fd fuzzDesign
		if err := json.Unmarshal([]byte(body), &fd); err != nil {
			return // malformed JSON is the decoder's problem, not the backends'
		}
		m, err := ModelByName(fd.Model)
		if err != nil {
			return
		}
		ym, _ := YieldByName(fd.Yield) // nil on unknown → spec default (Murphy)
		fab := FabCoal
		if f, err := FabByName(fd.Fab); err == nil {
			fab = f
		}
		spec := DesignSpec{
			Name:    "fuzz",
			Fab:     fab,
			Yield:   ym,
			Stacked: fd.Stacked,
			Packaging: Packaging{
				PerDie:  units.Carbon(foldArea(fd.PerDie)),
				PerBond: units.Carbon(foldArea(fd.PerBond)),
			},
		}
		for _, d := range fd.Dies {
			proc := Process7nm()
			if p, err := ProcessByName(d.Node); err == nil {
				proc = p
			}
			count := d.Count
			if count > 64 {
				count = count % 64
			}
			spec.Dies = append(spec.Dies, DieSpec{
				Name:    "die",
				Area:    units.Area(foldArea(d.AreaCM2)),
				Process: proc,
				Count:   count,
				Yield:   d.Yield,
			})
		}

		bd, err := m.EmbodiedDesign(spec)
		if err != nil {
			return // rejected specs only need to not panic
		}
		total := bd.Total.Grams()
		if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
			t.Fatalf("%s: degenerate total %v for %+v", m.Name(), total, spec)
		}
		sum := bd.Silicon.Grams() + bd.Packaging.Grams() + bd.Bonding.Grams()
		if diff := math.Abs(total - sum); diff > 1e-9*math.Max(total, 1) {
			t.Fatalf("%s: components %v do not sum to total %v", m.Name(), sum, total)
		}
		if bd.Silicon < 0 || bd.Packaging < 0 || bd.Bonding < 0 {
			t.Fatalf("%s: negative component in %+v", m.Name(), bd)
		}
		for _, d := range bd.Dies {
			if !(d.Yield > 0 && d.Yield <= 1) {
				t.Fatalf("%s: die yield %v out of (0,1] for %+v", m.Name(), d.Yield, spec)
			}
		}
	})
}
