package carbon

import (
	"fmt"

	"cordoba/internal/units"
)

// DieSpec describes one die (or a batch of identical dies) inside a design:
// its silicon area, the technology node it is fabricated on, how many copies
// the design uses, and — optionally — a fixed fabrication yield that
// overrides the design's yield model (lifecycle studies pin yield to a
// scalar; everything else derives it from area and defect density).
type DieSpec struct {
	Name    string
	Area    units.Area
	Process Process

	// Count is the number of identical instances; zero means one.
	Count int

	// Yield, when in (0, 1], fixes the fabrication yield of this die.
	// Zero derives it from the design's YieldModel and the fab's defect
	// density.
	Yield float64
}

// count returns the effective instance count.
func (d DieSpec) count() int {
	if d.Count == 0 {
		return 1
	}
	return d.Count
}

// DesignSpec is the backend-neutral description of a packaged silicon design
// that every carbon.Model prices: the fab, the dies (with areas, nodes and
// counts), the yield model used for dies without a fixed yield, and the
// assembly constants. accel.Config, soc.SoC and lifecycle.Service all lower
// themselves onto this form, so backends are interchangeable at every call
// site.
type DesignSpec struct {
	Name string
	Fab  Fab

	// Dies lists the design's dies bottom-up (for stacked designs the
	// first entry is the base tier).
	Dies []DieSpec

	// Yield selects the yield model for dies without a fixed yield.
	// Nil selects Murphy — the pipeline's historical default.
	Yield YieldModel

	// Packaging prices conventional assembly (per-package and per-bond
	// constants); backends add their own carrier/bonding terms on top.
	Packaging Packaging

	// Stacked marks the dies as vertical tiers of one 3D stack. Backends
	// that synthesize their own die partitioning (chiplet splits, tier
	// splits) leave stacked specs as-is.
	Stacked bool

	// Integration records the partition style that produced this spec
	// ("monolithic", "2.5d", "3d"); informational — backends price the die
	// list, but validation uses it to match specs to capable backends.
	Integration string

	// Carrier, when set, overrides the chiplet backend's carrier technology
	// by name ("rdl-fanout", "silicon-interposer", "emib"). Other backends
	// ignore it.
	Carrier string
}

// yieldModel returns the spec's yield model, defaulting to Murphy.
func (s DesignSpec) yieldModel() YieldModel {
	if s.Yield == nil {
		return MurphyYield{}
	}
	return s.Yield
}

// dieYield resolves one die's fabrication yield: the fixed override when
// set, otherwise the design's yield model at the die's area.
func (s DesignSpec) dieYield(d DieSpec) float64 {
	if d.Yield != 0 {
		return d.Yield
	}
	return s.yieldModel().Yield(d.Area, s.Fab.DefectDensity)
}

// Validate checks the spec is well-formed enough to price.
func (s DesignSpec) Validate() error {
	if len(s.Dies) == 0 {
		return fmt.Errorf("carbon: design %q has no dies", s.Name)
	}
	for i, d := range s.Dies {
		if d.Count < 0 {
			return fmt.Errorf("carbon: design %q die %d: negative count %d", s.Name, i, d.Count)
		}
		if d.Yield < 0 || d.Yield > 1 {
			return fmt.Errorf("carbon: design %q die %d: fixed yield must be in (0,1], got %v", s.Name, i, d.Yield)
		}
		if d.Area < 0 {
			return fmt.Errorf("carbon: design %q die %d: negative area %v", s.Name, i, d.Area)
		}
	}
	return nil
}

// DieCarbon is one die entry of a Breakdown: the resolved yield and the
// embodied carbon of all Count instances.
type DieCarbon struct {
	Name   string
	Area   units.Area
	Count  int
	Yield  float64
	Carbon units.Carbon
}

// Breakdown decomposes a backend's embodied-carbon estimate. Total is
// authoritative; the components show where it comes from. ACT folds all
// assembly into Packaging; the chiplet and 3D backends report their
// carrier/bond-loss/bonding-energy terms under Bonding.
type Breakdown struct {
	Model string

	// Silicon is the yield-derated fabrication footprint of all dies.
	Silicon units.Carbon
	// Packaging covers assembly: package substrate, bumping, carriers.
	Packaging units.Carbon
	// Bonding covers inter-die integration beyond conventional assembly:
	// assembly-yield scrap, TSV/hybrid-bonding energy, interposer loss.
	Bonding units.Carbon

	Total units.Carbon

	Dies []DieCarbon
}

// Model is a pluggable embodied-carbon backend: it prices a DesignSpec into
// a Breakdown. The registry (Models, ModelByName) exposes the built-in
// backends; consumers select one by name through the DSE grid, the facade,
// and cordobad's model request field.
type Model interface {
	// Name identifies the backend in the registry ("act", "chiplet",
	// "stacked-3d").
	Name() string
	// EmbodiedDesign prices the design.
	EmbodiedDesign(spec DesignSpec) (Breakdown, error)
}

// ACTModel is the default backend: the ACT monolithic/stacked-die math of
// eq. IV.5 exactly as the pre-refactor pipeline computed it — per-die yield
// derating, Count-weighted die footprints, and conventional packaging via
// Packaging.Assembly. It is bit-identical to the historical accel.Embodied
// and lifecycle paths (the differential tests in internal/accel hold it to
// that).
type ACTModel struct{}

// Name implements Model.
func (ACTModel) Name() string { return "act" }

// EmbodiedDesign implements Model.
//
// The float operations deliberately mirror the historical accel.Embodied
// loop — first die added to zero, batch dies weighted by a single
// multiplication, packaging added last — so existing golden results do not
// move by even one ULP.
func (ACTModel) EmbodiedDesign(spec DesignSpec) (Breakdown, error) {
	if err := spec.Validate(); err != nil {
		return Breakdown{}, err
	}
	bd := Breakdown{Model: "act", Dies: make([]DieCarbon, 0, len(spec.Dies))}
	dice := 0
	for _, d := range spec.Dies {
		y := spec.dieYield(d)
		e, err := d.Process.EmbodiedDie(spec.Fab, d.Area, y)
		if err != nil {
			return Breakdown{}, fmt.Errorf("carbon: design %q die %q: %w", spec.Name, d.Name, err)
		}
		count := d.count()
		batch := e * units.Carbon(count)
		bd.Silicon += batch
		bd.Dies = append(bd.Dies, DieCarbon{Name: d.Name, Area: d.Area, Count: count, Yield: y, Carbon: batch})
		dice += count
	}
	pkg, err := spec.Packaging.Assembly(dice)
	if err != nil {
		return Breakdown{}, fmt.Errorf("carbon: design %q: %w", spec.Name, err)
	}
	bd.Packaging = pkg
	bd.Total = bd.Silicon + bd.Packaging
	return bd, nil
}

// DefaultModel returns the backend the pipeline uses when none is selected.
func DefaultModel() Model { return ACTModel{} }

// Models returns the registered embodied-carbon backends. Zero values select
// each backend's documented defaults.
func Models() []Model {
	return []Model{ACTModel{}, ChipletModel{}, Stacked3DModel{}}
}

// ModelByName resolves a backend by registry name. The empty string selects
// the default (ACT) backend.
func ModelByName(name string) (Model, error) {
	switch name {
	case "", "act":
		return ACTModel{}, nil
	case "chiplet":
		return ChipletModel{}, nil
	case "stacked-3d":
		return Stacked3DModel{}, nil
	}
	return nil, fmt.Errorf("carbon: unknown embodied-carbon model %q (try one of %v)", name, ModelNames())
}

// ModelNames lists the registry names.
func ModelNames() []string {
	models := Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name()
	}
	return names
}

// ModelInfo describes one backend for discovery listings (GET /v1/models).
type ModelInfo struct {
	Name        string
	Description string
	// Integrations lists the partition integration styles the backend can
	// price (see ModelIntegrations).
	Integrations []string
}

// ModelInfos returns the registry with one-line descriptions.
func ModelInfos() []ModelInfo {
	return []ModelInfo{
		{"act", "ACT monolithic/stacked-die accounting (eq. IV.5): per-die yield, Count-weighted dies, conventional packaging", ModelIntegrations("act")},
		{"chiplet", "ECO-CHIP-style 2.5D disaggregation: per-chiplet yield at possibly heterogeneous nodes plus RDL/interposer/EMIB carrier carbon and assembly-yield scrap", ModelIntegrations("chiplet")},
		{"stacked-3d", "3D-Carbon-style die stacking: per-tier yield, hybrid-bonding interface yield loss, and bonding energy at the fab grid's intensity", ModelIntegrations("stacked-3d")},
	}
}

// ModelIntegrations lists the partition integration styles a backend can
// price. Every backend handles monolithic specs; 2.5d assemblies need the
// chiplet backend's carrier terms, and stacked tiers are priced either by
// the stacked-3d backend (full bonding treatment) or by ACT (the legacy
// Fig. 11 per-die accounting). The empty name is the default (ACT) backend.
func ModelIntegrations(name string) []string {
	switch name {
	case "", "act":
		return []string{"monolithic", "3d"}
	case "chiplet":
		return []string{"monolithic", "2.5d"}
	case "stacked-3d":
		return []string{"monolithic", "3d"}
	}
	return nil
}

// ModelSupportsIntegration reports whether the named backend can price specs
// of the given integration style ("" counts as monolithic).
func ModelSupportsIntegration(model, integration string) bool {
	if integration == "" {
		integration = "monolithic"
	}
	for _, s := range ModelIntegrations(model) {
		if s == integration {
			return true
		}
	}
	return false
}

// ModelForIntegration returns the registry name of the natural backend for an
// integration style: the default (ACT) pipeline for monolithic specs, the
// chiplet backend for 2.5d carriers, the stacked-3d backend for tiers.
func ModelForIntegration(integration string) (string, error) {
	switch integration {
	case "", "monolithic":
		return "", nil
	case "2.5d":
		return "chiplet", nil
	case "3d":
		return "stacked-3d", nil
	}
	return "", fmt.Errorf("carbon: unknown integration style %q (want monolithic, 2.5d or 3d)", integration)
}
