// Package device implements the circuit-level energy/delay model that §III
// and §VII of the paper reason about: an alpha-power-law MOSFET [42] whose
// design knobs are supply voltage (V_DD), threshold voltage (V_T), transistor
// width, and process technology node.
//
// The model is deliberately first-order — CORDOBA consumes only the *trade-off
// directions* between energy, delay and area that these knobs induce
// (Table VI), plus the historical observation that ED² is V_DD-independent
// only under the antiquated square-law assumptions (§III-A).
//
// Physics implemented:
//
//	I_on    ∝ W·(V_DD − V_T)^α              (alpha-power law; α≈1.3 today, 2 for square law)
//	delay   ∝ C_load·V_DD / I_on            (gate delay)
//	E_dyn   ∝ C_load·V_DD² per switching op (C_load ∝ W)
//	P_leak  ∝ W·V_DD·exp(−V_T / (n·v_T))    (subthreshold leakage)
package device

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// ThermalVoltage is kT/q at room temperature, in volts.
const ThermalVoltage = 0.026

// Node describes a process technology node's first-order electrical scaling.
// Values are normalized to the 7 nm node (factor 1.0) and follow the
// diminishing-returns trends reported by imec's PPACE analysis [18], [39]:
// each successive node improves capacitance (hence dynamic energy) and delay,
// shrinks area, but the improvements shrink as nodes advance.
type Node struct {
	Name string
	Nm   int // drawn feature size in nanometres

	CapScale   float64 // load capacitance per unit width, normalized to 7 nm
	SpeedScale float64 // intrinsic speed multiplier, normalized to 7 nm
	AreaScale  float64 // area per gate, normalized to 7 nm
	VDDNominal float64 // nominal supply voltage, volts
	VTNominal  float64 // nominal threshold voltage, volts
	LeakScale  float64 // leakage per unit width, normalized to 7 nm
}

// Nodes returns the supported technology nodes from 28 nm down to 3 nm,
// ordered from oldest to newest.
func Nodes() []Node {
	return []Node{
		{"28nm", 28, 2.9, 0.42, 7.0, 0.90, 0.38, 0.45},
		{"20nm", 20, 2.3, 0.52, 4.7, 0.85, 0.36, 0.55},
		{"14nm", 14, 1.8, 0.65, 2.9, 0.80, 0.34, 0.70},
		{"10nm", 10, 1.35, 0.82, 1.7, 0.75, 0.32, 0.85},
		{"7nm", 7, 1.0, 1.0, 1.0, 0.70, 0.30, 1.0},
		{"5nm", 5, 0.82, 1.12, 0.65, 0.65, 0.28, 1.25},
		{"3nm", 3, 0.70, 1.22, 0.45, 0.60, 0.26, 1.55},
	}
}

// NodeByName returns the node with the given name.
func NodeByName(name string) (Node, error) {
	for _, n := range Nodes() {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("device: unknown technology node %q", name)
}

// Node7nm returns the 7 nm node, the anchor of the paper's case studies
// (Snapdragon XR2, the Fig. 5 accelerator, the 3D-stacked PDK of [54]).
func Node7nm() Node {
	n, err := NodeByName("7nm")
	if err != nil {
		panic(err)
	}
	return n
}

// Design is a digital circuit design point: a technology node plus the three
// circuit knobs of Table VI. The zero value is not usable; construct with
// NewDesign and adjust knobs from there.
type Design struct {
	Node Node

	VDD        float64 // supply voltage, volts
	VT         float64 // threshold voltage, volts
	WidthScale float64 // transistor width multiplier (∝ area), 1.0 nominal

	// Alpha is the alpha-power-law velocity-saturation exponent. Modern
	// short-channel devices have α≈1.3; the ideal Shockley square law is
	// α=2 (see §III-A's ED² discussion).
	Alpha float64

	// Gates is the logic size (number of gate-equivalents); LogicDepth is
	// the number of gate delays per clock cycle; ActivityFactor is the
	// fraction of gates switching per cycle.
	Gates          float64
	LogicDepth     float64
	ActivityFactor float64

	// SubthresholdN is the subthreshold slope ideality factor (1.0–1.5).
	SubthresholdN float64
}

// NewDesign returns a nominal design on node n: nominal voltages, unit width,
// modern α=1.3, one million gates of depth 20 with 10 % activity.
func NewDesign(n Node) Design {
	return Design{
		Node:           n,
		VDD:            n.VDDNominal,
		VT:             n.VTNominal,
		WidthScale:     1.0,
		Alpha:          1.3,
		Gates:          1e6,
		LogicDepth:     20,
		ActivityFactor: 0.1,
		SubthresholdN:  1.3,
	}
}

// Validate reports whether the design point is physically meaningful.
func (d Design) Validate() error {
	switch {
	case d.VDD <= 0:
		return fmt.Errorf("device: V_DD must be positive, got %v", d.VDD)
	case d.VT < 0:
		return fmt.Errorf("device: V_T must be non-negative, got %v", d.VT)
	case d.VDD <= d.VT:
		return fmt.Errorf("device: V_DD (%v) must exceed V_T (%v) for the gate to switch", d.VDD, d.VT)
	case d.WidthScale <= 0:
		return fmt.Errorf("device: width scale must be positive, got %v", d.WidthScale)
	case d.Alpha < 1 || d.Alpha > 2:
		return fmt.Errorf("device: alpha must be in [1,2], got %v", d.Alpha)
	case d.Gates <= 0 || d.LogicDepth <= 0:
		return fmt.Errorf("device: gates and logic depth must be positive")
	}
	return nil
}

// gateCap returns the load capacitance of one gate in farads. The constant
// fixes a 7 nm unit-width gate at 0.1 fF.
func (d Design) gateCap() float64 {
	const baseCap = 0.1e-15
	return baseCap * d.Node.CapScale * d.WidthScale
}

// onCurrent returns the drive current of one gate in amperes, per the
// alpha-power law. The constant fixes a 7 nm unit-width gate at nominal
// voltages to roughly 10 µA.
func (d Design) onCurrent() float64 {
	overdrive := d.VDD - d.VT
	if overdrive <= 0 {
		return 0
	}
	nominal := math.Pow(d.Node.VDDNominal-d.Node.VTNominal, d.Alpha)
	const baseCurrent = 10e-6
	return baseCurrent * d.Node.SpeedScale * d.WidthScale * math.Pow(overdrive, d.Alpha) / nominal
}

// GateDelay returns the switching delay of one gate.
func (d Design) GateDelay() units.Time {
	i := d.onCurrent()
	if i == 0 {
		return units.Time(math.Inf(1))
	}
	return units.Time(d.gateCap() * d.VDD / i)
}

// MaxClock returns the highest clock frequency the design can sustain:
// one critical path of LogicDepth gate delays per cycle.
func (d Design) MaxClock() units.Frequency {
	return units.Frequency(1 / (d.GateDelay().Seconds() * d.LogicDepth))
}

// DynamicEnergyPerCycle returns the switching energy of one clock cycle:
// activity·gates·C·V_DD².
func (d Design) DynamicEnergyPerCycle() units.Energy {
	return units.Energy(d.ActivityFactor * d.Gates * d.gateCap() * d.VDD * d.VDD)
}

// LeakagePower returns the static power of the whole design. The constant
// fixes a 7 nm unit-width gate at nominal V_T to 1 nW of leakage.
func (d Design) LeakagePower() units.Power {
	const baseLeak = 1e-9
	nominalExp := math.Exp(-d.Node.VTNominal / (d.SubthresholdN * ThermalVoltage))
	perGate := baseLeak * d.Node.LeakScale * d.WidthScale *
		(d.VDD / d.Node.VDDNominal) *
		math.Exp(-d.VT/(d.SubthresholdN*ThermalVoltage)) / nominalExp
	return units.Power(perGate * d.Gates)
}

// Area returns the silicon area of the design. The constant fixes a 7 nm
// gate-equivalent at 0.2 µm².
func (d Design) Area() units.Area {
	const baseAreaCM2 = 0.2e-8 // 0.2 µm² in cm²
	return units.Area(baseAreaCM2 * d.Node.AreaScale * d.WidthScale * d.Gates)
}

// TaskProfile evaluates the design running a task of the given cycle count at
// clock frequency f (capped at MaxClock): it returns the task delay and the
// total (dynamic + leakage) energy.
func (d Design) TaskProfile(cycles float64, f units.Frequency) (units.Time, units.Energy) {
	if max := d.MaxClock(); f > max {
		f = max
	}
	delay := units.Time(cycles / f.Hertz())
	dyn := units.Energy(cycles) * d.DynamicEnergyPerCycle()
	leak := d.LeakagePower().Over(delay)
	return delay, dyn + leak
}

// Run evaluates the task at the design's maximum clock.
func (d Design) Run(cycles float64) (units.Time, units.Energy) {
	return d.TaskProfile(cycles, d.MaxClock())
}

// EDPPerCycle returns the energy-delay product of one cycle at max clock,
// ignoring leakage — the classic Gonzalez–Horowitz figure of merit [19].
func (d Design) EDPPerCycle() float64 {
	return d.DynamicEnergyPerCycle().Joules() * d.GateDelay().Seconds() * d.LogicDepth
}

// ED2PPerCycle returns the energy-delay² product of one cycle at max clock,
// ignoring leakage.
func (d Design) ED2PPerCycle() float64 {
	cyc := d.GateDelay().Seconds() * d.LogicDepth
	return d.DynamicEnergyPerCycle().Joules() * cyc * cyc
}
