package device

import "fmt"

// Knob identifies one of the design knobs of paper Table VI.
type Knob int

// The five knobs of Table VI. The first three trade energy against delay;
// the last two trade energy efficiency against embodied carbon.
const (
	KnobVDDDown Knob = iota
	KnobVTUp
	KnobWidthDown
	KnobLifetimeDown
	KnobNodeAdvance
)

// String returns the knob's conventional notation.
func (k Knob) String() string {
	switch k {
	case KnobVDDDown:
		return "V_DD ↓"
	case KnobVTUp:
		return "V_T ↑"
	case KnobWidthDown:
		return "FET width ↓"
	case KnobLifetimeDown:
		return "Lifetime ↓"
	case KnobNodeAdvance:
		return "Tech. node ↓"
	default:
		return fmt.Sprintf("Knob(%d)", int(k))
	}
}

// Apply returns a copy of d with knob k turned by a small step. Only the
// circuit knobs change the design; lifetime is a system-level parameter and
// node advancement selects the next entry of Nodes().
func (k Knob) Apply(d Design) Design {
	switch k {
	case KnobVDDDown:
		d.VDD *= 0.9
	case KnobVTUp:
		d.VT *= 1.2
	case KnobWidthDown:
		d.WidthScale *= 0.8
	case KnobNodeAdvance:
		nodes := Nodes()
		for i, n := range nodes {
			if n.Nm == d.Node.Nm && i+1 < len(nodes) {
				ratioVDD := d.VDD / d.Node.VDDNominal
				ratioVT := d.VT / d.Node.VTNominal
				d.Node = nodes[i+1]
				d.VDD = d.Node.VDDNominal * ratioVDD
				d.VT = d.Node.VTNominal * ratioVT
				break
			}
		}
	}
	return d
}

// Effect summarizes how turning a knob moves task energy, task delay and die
// area (the proxy for embodied carbon at a fixed node; for node advancement
// the embodied movement is dominated by fab intensity and is reported by the
// carbon package instead).
type Effect struct {
	Knob        Knob
	EnergyRatio float64 // after/before task energy
	DelayRatio  float64 // after/before task delay
	AreaRatio   float64 // after/before die area
}

// Sweep evaluates all circuit-level knobs on design d running a task of the
// given cycle count, returning the movement each knob causes.
func Sweep(d Design, cycles float64) []Effect {
	baseD, baseE := d.Run(cycles)
	baseA := d.Area()
	knobs := []Knob{KnobVDDDown, KnobVTUp, KnobWidthDown, KnobNodeAdvance}
	effects := make([]Effect, 0, len(knobs))
	for _, k := range knobs {
		nd := k.Apply(d)
		dd, ee := nd.Run(cycles)
		effects = append(effects, Effect{
			Knob:        k,
			EnergyRatio: ee.Joules() / baseE.Joules(),
			DelayRatio:  dd.Seconds() / baseD.Seconds(),
			AreaRatio:   nd.Area().CM2() / baseA.CM2(),
		})
	}
	return effects
}

// DVFSPoint scales a design's supply and clock together, the operating-mode
// move that motivated ED² historically (§III-A): low V_DD + low f_CLK versus
// high V_DD + high f_CLK.
func DVFSPoint(d Design, vddScale float64) Design {
	d.VDD = d.Node.VDDNominal * vddScale
	return d
}
