package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodesOrderedAndMonotone(t *testing.T) {
	nodes := Nodes()
	if len(nodes) < 5 {
		t.Fatalf("expected at least 5 nodes, got %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		prev, cur := nodes[i-1], nodes[i]
		if cur.Nm >= prev.Nm {
			t.Errorf("nodes not ordered: %s after %s", cur.Name, prev.Name)
		}
		if cur.CapScale >= prev.CapScale {
			t.Errorf("%s: capacitance should shrink vs %s", cur.Name, prev.Name)
		}
		if cur.SpeedScale <= prev.SpeedScale {
			t.Errorf("%s: speed should improve vs %s", cur.Name, prev.Name)
		}
		if cur.AreaScale >= prev.AreaScale {
			t.Errorf("%s: area should shrink vs %s", cur.Name, prev.Name)
		}
		if cur.VDDNominal >= prev.VDDNominal {
			t.Errorf("%s: V_DD should drop vs %s", cur.Name, prev.Name)
		}
	}
}

func TestNodeByName(t *testing.T) {
	n, err := NodeByName("7nm")
	if err != nil || n.Nm != 7 {
		t.Fatalf("NodeByName(7nm) = %v, %v", n, err)
	}
	if _, err := NodeByName("6nm"); err == nil {
		t.Fatal("expected error for unknown node")
	}
	if Node7nm().Nm != 7 {
		t.Fatal("Node7nm broken")
	}
}

func TestValidate(t *testing.T) {
	d := NewDesign(Node7nm())
	if err := d.Validate(); err != nil {
		t.Fatalf("nominal design invalid: %v", err)
	}
	bad := []func(Design) Design{
		func(d Design) Design { d.VDD = 0; return d },
		func(d Design) Design { d.VT = -0.1; return d },
		func(d Design) Design { d.VDD = 0.2; d.VT = 0.3; return d },
		func(d Design) Design { d.WidthScale = 0; return d },
		func(d Design) Design { d.Alpha = 3; return d },
		func(d Design) Design { d.Gates = 0; return d },
	}
	for i, mut := range bad {
		if err := mut(d).Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

// Table VI row 1: lowering V_DD lowers energy and raises delay.
func TestVDDKnobDirection(t *testing.T) {
	d := NewDesign(Node7nm())
	low := d
	low.VDD = d.VDD * 0.85
	if low.DynamicEnergyPerCycle() >= d.DynamicEnergyPerCycle() {
		t.Error("lower V_DD should lower dynamic energy")
	}
	if low.GateDelay() <= d.GateDelay() {
		t.Error("lower V_DD should raise delay")
	}
	if low.Area() != d.Area() {
		t.Error("V_DD should not change area")
	}
}

// Table VI row 2: raising V_T lowers leakage (hence task energy) and raises
// delay.
func TestVTKnobDirection(t *testing.T) {
	d := NewDesign(Node7nm())
	hi := d
	hi.VT = d.VT * 1.3
	if hi.LeakagePower() >= d.LeakagePower() {
		t.Error("higher V_T should lower leakage")
	}
	if hi.GateDelay() <= d.GateDelay() {
		t.Error("higher V_T should raise delay")
	}
}

// Table VI row 3: narrower transistors lower energy and area, raise delay...
func TestWidthKnobDirection(t *testing.T) {
	d := NewDesign(Node7nm())
	slim := d
	slim.WidthScale = 0.5
	if slim.DynamicEnergyPerCycle() >= d.DynamicEnergyPerCycle() {
		t.Error("narrower devices should lower dynamic energy")
	}
	if slim.Area() >= d.Area() {
		t.Error("narrower devices should shrink area")
	}
	// Gate delay: C and I both scale with W, so intrinsic delay is flat in
	// this first-order model; the energy/area movement is what Table VI
	// records. Verify delay does not *improve*.
	if slim.GateDelay() < d.GateDelay()*0.999999 {
		t.Error("narrower devices should not improve delay")
	}
}

// §VII: advancing the technology node improves both energy and delay
// (that is why EDP always improved with scaling).
func TestNodeAdvanceImprovesEnergyAndDelay(t *testing.T) {
	nodes := Nodes()
	for i := 1; i < len(nodes); i++ {
		older := NewDesign(nodes[i-1])
		newer := NewDesign(nodes[i])
		od, oe := older.Run(1e9)
		nd, ne := newer.Run(1e9)
		if ne >= oe {
			t.Errorf("%s→%s: energy should improve (%v → %v)", nodes[i-1].Name, nodes[i].Name, oe, ne)
		}
		if nd >= od {
			t.Errorf("%s→%s: delay should improve (%v → %v)", nodes[i-1].Name, nodes[i].Name, od, nd)
		}
		if newer.Area() >= older.Area() {
			t.Errorf("%s→%s: area should shrink", nodes[i-1].Name, nodes[i].Name)
		}
	}
}

func TestSweepDirections(t *testing.T) {
	effects := Sweep(NewDesign(Node7nm()), 1e9)
	byKnob := map[Knob]Effect{}
	for _, e := range effects {
		byKnob[e.Knob] = e
	}
	if e := byKnob[KnobVDDDown]; !(e.EnergyRatio < 1 && e.DelayRatio > 1 && e.AreaRatio == 1) {
		t.Errorf("V_DD down effect = %+v", e)
	}
	if e := byKnob[KnobVTUp]; !(e.EnergyRatio < 1 && e.DelayRatio > 1) {
		t.Errorf("V_T up effect = %+v", e)
	}
	if e := byKnob[KnobWidthDown]; !(e.EnergyRatio < 1 && e.AreaRatio < 1) {
		t.Errorf("width down effect = %+v", e)
	}
	if e := byKnob[KnobNodeAdvance]; !(e.EnergyRatio < 1 && e.DelayRatio < 1 && e.AreaRatio < 1) {
		t.Errorf("node advance effect = %+v", e)
	}
}

func TestKnobStrings(t *testing.T) {
	for k := KnobVDDDown; k <= KnobNodeAdvance; k++ {
		if k.String() == "" {
			t.Errorf("knob %d has empty name", int(k))
		}
	}
	if Knob(42).String() != "Knob(42)" {
		t.Error("unknown knob string")
	}
}

func TestKnobApplyNodeAtNewest(t *testing.T) {
	nodes := Nodes()
	d := NewDesign(nodes[len(nodes)-1])
	d2 := KnobNodeAdvance.Apply(d)
	if d2.Node.Nm != d.Node.Nm {
		t.Error("advancing past the newest node should be a no-op")
	}
}

// §III-A: under the ideal square law (α=2) with V_T=0 and no leakage, ED² is
// V_DD-independent; with modern α=1.3 and nonzero V_T it is not.
func TestED2PVDDIndependenceSquareLaw(t *testing.T) {
	ideal := NewDesign(Node7nm())
	ideal.Alpha = 2
	ideal.VT = 0
	ref := DVFSPoint(ideal, 1.0).ED2PPerCycle()
	for _, s := range []float64{0.6, 0.8, 1.2} {
		got := DVFSPoint(ideal, s).ED2PPerCycle()
		if math.Abs(got-ref) > 1e-9*ref {
			t.Errorf("square-law ED2 at scale %v = %v, want %v", s, got, ref)
		}
	}

	modern := NewDesign(Node7nm()) // α=1.3, V_T=0.3
	ref = DVFSPoint(modern, 1.0).ED2PPerCycle()
	got := DVFSPoint(modern, 0.7).ED2PPerCycle()
	if math.Abs(got-ref) < 0.05*ref {
		t.Errorf("modern ED2 should vary with V_DD: %v vs %v", got, ref)
	}
}

// EDP, by contrast, always varies with V_DD: it is the knob-balancing metric.
func TestEDPVariesWithVDD(t *testing.T) {
	d := NewDesign(Node7nm())
	a := DVFSPoint(d, 1.0).EDPPerCycle()
	b := DVFSPoint(d, 0.75).EDPPerCycle()
	if math.Abs(a-b) < 0.01*a {
		t.Error("EDP should vary with V_DD")
	}
}

func TestTaskProfileCapsClock(t *testing.T) {
	d := NewDesign(Node7nm())
	max := d.MaxClock()
	delayAtMax, _ := d.TaskProfile(1e6, max)
	delayOver, _ := d.TaskProfile(1e6, max*10)
	if delayOver != delayAtMax {
		t.Errorf("requesting clock above max should cap: %v vs %v", delayOver, delayAtMax)
	}
}

func TestRunEnergyIncludesLeakage(t *testing.T) {
	d := NewDesign(Node7nm())
	delay, energy := d.Run(1e9)
	dyn := units2joules(d.DynamicEnergyPerCycle()) * 1e9
	leak := d.LeakagePower().Watts() * delay.Seconds()
	total := dyn + leak
	if math.Abs(energy.Joules()-total) > 1e-9*total {
		t.Errorf("energy = %v, want dyn+leak = %v", energy.Joules(), total)
	}
	if leak <= 0 {
		t.Error("leakage should be positive")
	}
}

func units2joules(e interface{ Joules() float64 }) float64 { return e.Joules() }

func TestGateDelayInfiniteAtZeroOverdrive(t *testing.T) {
	d := NewDesign(Node7nm())
	d.VDD = d.VT // zero overdrive
	if !math.IsInf(d.GateDelay().Seconds(), 1) {
		t.Error("zero overdrive should give infinite delay")
	}
}

// Property: within the valid V_DD range, delay is monotone decreasing and
// dynamic energy monotone increasing in V_DD.
func TestVDDMonotonicityProperty(t *testing.T) {
	base := NewDesign(Node7nm())
	f := func(a, b uint8) bool {
		// Map to [0.4, 1.0] volts, above V_T=0.3.
		v1 := 0.4 + 0.6*float64(a)/255
		v2 := 0.4 + 0.6*float64(b)/255
		lo, hi := math.Min(v1, v2), math.Max(v1, v2)
		if hi-lo < 1e-6 {
			return true
		}
		dLo, dHi := base, base
		dLo.VDD, dHi.VDD = lo, hi
		return dLo.GateDelay() >= dHi.GateDelay() &&
			dLo.DynamicEnergyPerCycle() <= dHi.DynamicEnergyPerCycle()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: there is an EDP-optimal V_DD strictly inside the range — pushing
// V_DD to either extreme does not minimize EDP when leakage is included.
// (This is the "optimizing EDP automatically selects V_DD" point of §III-A.)
func TestEDPInteriorOptimum(t *testing.T) {
	d := NewDesign(Node7nm())
	edp := func(vdd float64) float64 {
		x := d
		x.VDD = vdd
		delay, energy := x.Run(1e9)
		return energy.Joules() * delay.Seconds()
	}
	lo, mid, hi := edp(0.35), edp(0.55), edp(1.4)
	if !(mid < lo && mid < hi) {
		t.Errorf("EDP should have interior optimum: edp(0.35)=%v edp(0.55)=%v edp(1.4)=%v", lo, mid, hi)
	}
}
