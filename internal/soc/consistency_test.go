package soc

import (
	"math"
	"testing"

	"cordoba/internal/carbon"
)

// The Table V per-core embodied literals (895.89 / 447.945 gCO2e) must stay
// consistent with what the ACT backend derives for the same die at the
// paper's anchor point — otherwise internal/soc silently drifts from
// internal/carbon when either side is recalibrated.
func TestTableVCoresMatchACTDerivation(t *testing.T) {
	s := Quest2()
	gold, silver, err := s.DeriveCoreEmbodied(nil) // nil selects ACT
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.10 // Table V rounds its inputs; hold to 10%
	if rel := math.Abs(gold.Grams()-s.GoldEmbodied.Grams()) / s.GoldEmbodied.Grams(); rel > tol {
		t.Errorf("derived gold core = %.2f g, Table V = %.2f g (off by %.1f%%)",
			gold.Grams(), s.GoldEmbodied.Grams(), 100*rel)
	}
	if rel := math.Abs(silver.Grams()-s.SilverEmbodied.Grams()) / s.SilverEmbodied.Grams(); rel > tol {
		t.Errorf("derived silver core = %.2f g, Table V = %.2f g (off by %.1f%%)",
			silver.Grams(), s.SilverEmbodied.Grams(), 100*rel)
	}
	// The silver/gold area ratio is exactly 1/2, so the derived constants
	// must preserve Table V's silver = gold/2 relation exactly.
	if got, want := silver.Grams(), gold.Grams()/2; math.Abs(got-want) > 1e-9*want {
		t.Errorf("derived silver %v != derived gold/2 %v", got, want)
	}
}

func TestWithDerivedCores(t *testing.T) {
	s := Quest2()
	derived, err := s.WithDerivedCores(carbon.ChipletModel{})
	if err != nil {
		t.Fatal(err)
	}
	if derived.GoldEmbodied == s.GoldEmbodied {
		t.Error("chiplet backend should move the per-core constants")
	}
	if derived.GoldEmbodied <= 0 || derived.SilverEmbodied <= 0 {
		t.Errorf("degenerate derived cores: %v / %v", derived.GoldEmbodied, derived.SilverEmbodied)
	}
	// Everything else is untouched.
	if derived.Power != s.Power || derived.TaskDelay != s.TaskDelay {
		t.Error("WithDerivedCores must only change the embodied constants")
	}
	// The provisioning pipeline still runs on the derived platform.
	base := derived.Embodied(Provision{Gold: 4, Silver: 4})
	if base <= 0 {
		t.Errorf("derived 8-core embodied = %v", base)
	}
}
