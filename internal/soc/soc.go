// Package soc models the hardware-provisioning case study of §VI-D: a Meta
// Quest 2-class VR system-on-chip (Snapdragon XR2: a 7 nm octa-core CPU with
// four "gold" performance cores — one of them a prime core — and four
// "silver" efficiency cores), the thread-level-parallelism profiles of its
// top production tasks, and the tCDP effect of removing cores (eq. VI.10–12).
//
// The paper profiles deployed headsets with Simpleperf and Perfetto; this
// package substitutes synthetic TLP occupancy histograms calibrated to the
// paper's published measurements — TLP between 3.52 and 4.15, and a media
// task (M-1) that keeps 0.98× of its frame rate on 4 cores (Table V). See
// DESIGN.md §2.
package soc

import (
	"fmt"
	"math"

	"cordoba/internal/carbon"
	"cordoba/internal/metrics"
	"cordoba/internal/units"
)

// MaxCores is the XR2's CPU core count.
const MaxCores = 8

// TLPProfile is a thread-occupancy histogram: Fraction[k-1] is the share of
// busy time during which exactly k threads are runnable.
type TLPProfile struct {
	Fraction [MaxCores]float64
}

// Validate checks the histogram sums to one.
func (p TLPProfile) Validate() error {
	sum := 0.0
	for k, f := range p.Fraction {
		if f < 0 {
			return fmt.Errorf("soc: negative occupancy fraction at %d threads", k+1)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("soc: occupancy fractions sum to %v, want 1", sum)
	}
	return nil
}

// TLP returns the mean thread-level parallelism: Σ k·t_k, the metric of
// [6], [15], [17] that §VI-D uses to quantify over-provisioning.
func (p TLPProfile) TLP() float64 {
	tlp := 0.0
	for k, f := range p.Fraction {
		tlp += float64(k+1) * f
	}
	return tlp
}

// Slowdown returns the execution-time multiplier of running the profile on n
// cores instead of MaxCores, assuming work-conserving scheduling: phases
// with k ≤ n runnable threads are unaffected; phases with k > n stretch by
// k/n.
func (p TLPProfile) Slowdown(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	s := 0.0
	for k, f := range p.Fraction {
		threads := k + 1
		if threads > n {
			s += f * float64(threads) / float64(n)
		} else {
			s += f
		}
	}
	return s
}

// RelativeFPS returns the frame rate on n cores relative to MaxCores
// (the Fig. 10 / Table V "normalized FPS").
func (p TLPProfile) RelativeFPS(n int) float64 {
	return 1 / p.Slowdown(n)
}

// VRTask is one of the profiled production tasks.
type VRTask struct {
	Name     string // paper label, e.g. "M-1"
	Category string // general gaming, social gaming, browser, media
	Profile  TLPProfile
}

// Paper task labels (§VI-D).
const (
	TaskG2  = "G-2"
	TaskM1  = "M-1"
	TaskB1  = "B-1"
	TaskSG1 = "SG-1"
	TaskAll = "All Tasks"
)

// PaperVRTasks returns the four §VI-D tasks plus the "All Tasks" aggregate
// (the uniform mixture of the four). Histograms are calibrated so that TLP
// falls in the paper's measured 3.52–4.15 range and M-1 reproduces Table V.
func PaperVRTasks() []VRTask {
	g2 := VRTask{TaskG2, "general gaming", TLPProfile{
		[MaxCores]float64{0.05, 0.10, 0.20, 0.45, 0.12, 0.05, 0.02, 0.01}}}
	m1 := VRTask{TaskM1, "media", TLPProfile{
		[MaxCores]float64{0.05, 0.10, 0.17, 0.64, 0.03, 0.01, 0, 0}}}
	b1 := VRTask{TaskB1, "browser & virtual desktop", TLPProfile{
		[MaxCores]float64{0.06, 0.10, 0.16, 0.30, 0.20, 0.13, 0.03, 0.02}}}
	sg1 := VRTask{TaskSG1, "social gaming", TLPProfile{
		[MaxCores]float64{0.06, 0.10, 0.16, 0.30, 0.18, 0.12, 0.05, 0.03}}}

	var all TLPProfile
	for _, t := range []VRTask{g2, m1, b1, sg1} {
		for k := range all.Fraction {
			all.Fraction[k] += t.Profile.Fraction[k] / 4
		}
	}
	return []VRTask{g2, m1, b1, sg1, {TaskAll, "aggregate", all}}
}

// PaperVRTask returns a task by label.
func PaperVRTask(name string) (VRTask, error) {
	for _, t := range PaperVRTasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return VRTask{}, fmt.Errorf("soc: unknown VR task %q", name)
}

// Provision is a core configuration: how many silver and gold cores are
// powered and counted (eq. VI.12's inclusion mask).
type Provision struct {
	Silver, Gold int // gold includes the prime core
}

// Cores returns the total core count.
func (p Provision) Cores() int { return p.Silver + p.Gold }

// Mask returns the eq. VI.12 inclusion vector over the XR2's physical cores,
// ordered [silver 1-4, gold 1-3, prime gold].
func (p Provision) Mask() [MaxCores]bool {
	var m [MaxCores]bool
	for i := 0; i < p.Silver && i < 4; i++ {
		m[i] = true
	}
	for i := 0; i < p.Gold && i < 4; i++ {
		m[4+i] = true
	}
	return m
}

// ProvisionFor returns the §VI-D core-removal schedule for n total cores:
// cores are removed in gold/silver pairs (8 = 4+4, 7 = 4s+3g, 6 = 3+3,
// 5 = 3s+2g, 4 = 2+2, matching Table V's "2 gold + 2 silver" endpoint).
func ProvisionFor(n int) (Provision, error) {
	schedule := map[int]Provision{
		4: {2, 2}, 5: {3, 2}, 6: {3, 3}, 7: {4, 3}, 8: {4, 4},
	}
	p, ok := schedule[n]
	if !ok {
		return Provision{}, fmt.Errorf("soc: provisioning supports 4–8 cores, got %d", n)
	}
	return p, nil
}

// PowerModel selects how SoC power responds to provisioning.
type PowerModel int

const (
	// FixedPower is Table V's assumption: the same work runs on fewer
	// cores at unchanged total power (P 8.3 W before and after).
	FixedPower PowerModel = iota
	// ScaledPower lets power shrink with the active core count:
	// P(n) = P·(uncoreFraction + (1−uncoreFraction)·n/MaxCores). It is the
	// ablation of the fixed-power assumption.
	ScaledPower
)

// SoC holds the Quest 2-class platform constants.
type SoC struct {
	// Per-core embodied footprints (eq. VI.12 vector entries). Table V:
	// a gold core is 895.89 gCO2e; a silver core is half of that.
	GoldEmbodied, SilverEmbodied units.Carbon

	// Die-area model: uncore plus per-core slices (Table V's area row).
	UncoreArea, GoldArea, SilverArea units.Area

	// Power is the total SoC power while active (Table V holds it fixed
	// across provisioning: the same work runs on fewer cores).
	Power units.Power

	// TaskDelay is the baseline (8-core) execution time of one task run
	// (Table III: D = 40 s for M-1).
	TaskDelay units.Time

	// CIUse is the use-phase carbon intensity.
	CIUse units.CarbonIntensity

	// OperationalTime is the active use over the device lifetime at the
	// 8-core baseline; provisioning that slows tasks down stretches it.
	OperationalTime units.Time

	// PowerModel selects fixed (Table V) or core-scaled power;
	// UncorePowerFraction is the share of Power that does not scale with
	// cores (GPU, memory, display pipeline) under ScaledPower.
	PowerModel          PowerModel
	UncorePowerFraction float64
}

// power returns the SoC power draw with n cores active.
func (s SoC) power(n int) units.Power {
	if s.PowerModel != ScaledPower {
		return s.Power
	}
	frac := s.UncorePowerFraction
	if frac < 0 || frac > 1 {
		frac = 0.4
	}
	return units.Power(s.Power.Watts() * (frac + (1-frac)*float64(n)/MaxCores))
}

// Quest2 returns the platform calibrated to Table V: 8.3 W, 40 s per M-1
// task run (332 J), CI_use = 380 g/kWh, and an operational time chosen so
// that the 8-core total carbon matches the published 12 273 gCO2e.
func Quest2() SoC {
	return SoC{
		GoldEmbodied:    895.89,
		SilverEmbodied:  447.945,
		UncoreArea:      0.45,
		GoldArea:        0.30,
		SilverArea:      0.15,
		Power:           8.3,
		TaskDelay:       40,
		CIUse:           380,
		OperationalTime: units.Hours(2187.3),
	}
}

// Embodied returns the summed per-core embodied carbon of a provision —
// the eq. VI.12 dot product.
func (s SoC) Embodied(p Provision) units.Carbon {
	return units.Carbon(p.Gold)*s.GoldEmbodied + units.Carbon(p.Silver)*s.SilverEmbodied
}

// DieArea returns the full SoC die area: uncore plus all eight core slices.
func (s SoC) DieArea() units.Area {
	return s.UncoreArea + units.Area(4)*s.GoldArea + units.Area(4)*s.SilverArea
}

// DeriveCoreEmbodied recomputes the per-core embodied constants through an
// embodied-carbon backend instead of the checked-in Table V literals: the
// whole SoC die is priced at the paper's anchor point (7 nm, coal-heavy
// fab), and each core class is charged its area share of the silicon
// footprint — dies are scrapped whole, so core slices inherit the die-level
// yield derating. A nil model selects ACT.
//
// The consistency test in this package holds the Table V literals to the
// ACT derivation within tolerance, so internal/soc cannot silently drift
// from internal/carbon.
func (s SoC) DeriveCoreEmbodied(m carbon.Model) (gold, silver units.Carbon, err error) {
	if m == nil {
		m = carbon.DefaultModel()
	}
	die := s.DieArea()
	if die <= 0 {
		return 0, 0, fmt.Errorf("soc: non-positive die area %v", die)
	}
	spec := carbon.DesignSpec{
		Name: "xr2-soc",
		Fab:  carbon.FabCoal,
		Dies: []carbon.DieSpec{{Name: "soc", Area: die, Process: carbon.Process7nm()}},
	}
	bd, err := m.EmbodiedDesign(spec)
	if err != nil {
		return 0, 0, err
	}
	share := func(a units.Area) units.Carbon {
		return units.Carbon(bd.Total.Grams() * a.CM2() / die.CM2())
	}
	return share(s.GoldArea), share(s.SilverArea), nil
}

// WithDerivedCores returns a copy of the platform whose per-core embodied
// constants come from the backend instead of the Table V literals — the
// hook that lets the §VI-D provisioning study run under any carbon.Model.
func (s SoC) WithDerivedCores(m carbon.Model) (SoC, error) {
	gold, silver, err := s.DeriveCoreEmbodied(m)
	if err != nil {
		return SoC{}, err
	}
	s.GoldEmbodied = gold
	s.SilverEmbodied = silver
	return s, nil
}

// Area returns the die area of a provision (uncore plus core slices).
func (s SoC) Area(p Provision) units.Area {
	return s.UncoreArea + units.Area(p.Gold)*s.GoldArea + units.Area(p.Silver)*s.SilverArea
}

// Evaluate returns the lifetime metrics report of running task t with n
// cores: delay stretches by the TLP slowdown, energy follows (fixed power),
// operational carbon follows energy, and embodied carbon follows the
// provision.
func (s SoC) Evaluate(t VRTask, n int) (metrics.Report, error) {
	p, err := ProvisionFor(n)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := t.Profile.Validate(); err != nil {
		return metrics.Report{}, err
	}
	slow := t.Profile.Slowdown(n)
	power := s.power(n)
	delay := units.Time(s.TaskDelay.Seconds() * slow)
	energy := power.Over(delay)
	opTime := units.Time(s.OperationalTime.Seconds() * slow)
	return metrics.Report{
		Name:              fmt.Sprintf("%s/%d-core", t.Name, n),
		Delay:             delay,
		Energy:            energy,
		EmbodiedCarbon:    s.Embodied(p),
		OperationalCarbon: s.CIUse.Of(power.Over(opTime)),
		Tasks:             opTime.Seconds() / delay.Seconds(),
	}, nil
}

// CoreResult is one bar of Fig. 10.
type CoreResult struct {
	Cores       int
	Report      metrics.Report
	RelativeFPS float64
	TCDPGain    float64 // tCDP(8 cores) / tCDP(n cores); > 1 is an improvement
}

// Sweep evaluates the task across 4–8 cores (Fig. 10).
func (s SoC) Sweep(t VRTask) ([]CoreResult, error) {
	base, err := s.Evaluate(t, MaxCores)
	if err != nil {
		return nil, err
	}
	var out []CoreResult
	for n := 4; n <= MaxCores; n++ {
		r, err := s.Evaluate(t, n)
		if err != nil {
			return nil, err
		}
		out = append(out, CoreResult{
			Cores:       n,
			Report:      r,
			RelativeFPS: t.Profile.RelativeFPS(n),
			TCDPGain:    base.TCDP() / r.TCDP(),
		})
	}
	return out, nil
}

// OptimalCores returns the core count minimizing tCDP for the task (the
// starred configurations of Fig. 10).
func (s SoC) OptimalCores(t VRTask) (int, error) {
	res, err := s.Sweep(t)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, math.Inf(1)
	for _, r := range res {
		if v := r.Report.TCDP(); v < bestV {
			best, bestV = r.Cores, v
		}
	}
	return best, nil
}
