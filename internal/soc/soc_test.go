package soc

import (
	"math"
	"testing"
	"testing/quick"

	"cordoba/internal/units"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-30) {
		t.Errorf("%s: got %v want %v", name, got, want)
	}
}

func TestProfilesValidateAndTLPRange(t *testing.T) {
	tasks := PaperVRTasks()
	if len(tasks) != 5 {
		t.Fatalf("expected 5 tasks, got %d", len(tasks))
	}
	for _, task := range tasks {
		if err := task.Profile.Validate(); err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		tlp := task.Profile.TLP()
		// §VI-D: measured TLP of the four tasks ranges 3.52–4.15.
		if task.Name != TaskAll && (tlp < 3.4 || tlp > 4.25) {
			t.Errorf("%s: TLP = %.2f outside the paper's 3.52–4.15 band", task.Name, tlp)
		}
	}
}

func TestProfileValidateRejectsBadHistograms(t *testing.T) {
	var p TLPProfile
	if err := p.Validate(); err == nil {
		t.Error("zero histogram should fail")
	}
	p.Fraction[0] = 1.5
	p.Fraction[1] = -0.5
	if err := p.Validate(); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestSlowdownProperties(t *testing.T) {
	m1, err := PaperVRTask(TaskM1)
	if err != nil {
		t.Fatal(err)
	}
	if s := m1.Profile.Slowdown(MaxCores); s != 1 {
		t.Errorf("8-core slowdown = %v, want 1", s)
	}
	prev := 1.0
	for n := MaxCores; n >= 1; n-- {
		s := m1.Profile.Slowdown(n)
		if s < prev {
			t.Errorf("slowdown should grow as cores shrink: %d cores → %v", n, s)
		}
		prev = s
	}
	if !math.IsInf(m1.Profile.Slowdown(0), 1) {
		t.Error("0 cores should be infinitely slow")
	}
}

// Table V row "D": M-1 keeps ≈0.98 normalized FPS on 4 cores.
func TestM1FPSOnFourCores(t *testing.T) {
	m1, _ := PaperVRTask(TaskM1)
	near(t, "relative FPS", m1.Profile.RelativeFPS(4), 0.98, 0.01)
}

func TestProvisionSchedule(t *testing.T) {
	want := map[int]Provision{
		4: {2, 2}, 5: {3, 2}, 6: {3, 3}, 7: {4, 3}, 8: {4, 4},
	}
	for n, w := range want {
		p, err := ProvisionFor(n)
		if err != nil {
			t.Fatalf("cores=%d: %v", n, err)
		}
		if p != w {
			t.Errorf("cores=%d: %+v, want %+v", n, p, w)
		}
		if p.Cores() != n {
			t.Errorf("cores=%d: Cores() = %d", n, p.Cores())
		}
	}
	if _, err := ProvisionFor(3); err == nil {
		t.Error("3 cores should be rejected")
	}
	if _, err := ProvisionFor(9); err == nil {
		t.Error("9 cores should be rejected")
	}
}

func TestProvisionMaskEqVI12(t *testing.T) {
	// Eq. VI.12's example: the 4-core configuration keeps silver 1-2,
	// gold 1, and the prime gold core — i.e. 2 silver + 2 gold.
	p, _ := ProvisionFor(4)
	mask := p.Mask()
	count := 0
	for _, on := range mask {
		if on {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("4-core mask enables %d cores", count)
	}
	if !mask[0] || !mask[1] || mask[2] || mask[3] {
		t.Errorf("silver part of mask wrong: %v", mask)
	}
	if !mask[4] || !mask[5] || mask[6] || mask[7] {
		t.Errorf("gold part of mask wrong: %v", mask)
	}
}

// Table V before-column reproduction.
func TestTableVBaseline(t *testing.T) {
	s := Quest2()
	m1, _ := PaperVRTask(TaskM1)
	r, err := s.Evaluate(m1, 8)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "P_total·D = E", r.Energy.Joules(), 332, 1e-9)
	near(t, "C_embodied", r.EmbodiedCarbon.Grams(), 5375.33, 1e-4)
	near(t, "C_op per hour", s.CIUse.Of(s.Power.Over(units.Hours(1))).Grams(), 3.154, 1e-3)
	near(t, "C_total", r.TotalCarbon().Grams(), 12273, 3e-3)
	p8, _ := ProvisionFor(8)
	near(t, "area", s.Area(p8).CM2(), 2.25, 1e-9)
}

// Table V after-column: 8 → 4 cores for M-1.
func TestTableVOptimized(t *testing.T) {
	s := Quest2()
	m1, _ := PaperVRTask(TaskM1)
	before, _ := s.Evaluate(m1, 8)
	after, err := s.Evaluate(m1, 4)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "C_embodied halves", before.EmbodiedCarbon.Grams()/after.EmbodiedCarbon.Grams(), 2.0, 1e-9)
	p4, _ := ProvisionFor(4)
	near(t, "area", s.Area(p4).CM2(), 1.35, 1e-9)
	near(t, "C_total gain", before.TotalCarbon().Grams()/after.TotalCarbon().Grams(), 1.27, 0.02)
	// Headline: tCDP improves by ≈1.25×.
	near(t, "tCDP gain", before.TCDP()/after.TCDP(), 1.25, 0.01)
	// EDP gets slightly worse (0.98×), since delay grew.
	edpRatio := before.EDP() / after.EDP()
	if edpRatio >= 1 {
		t.Errorf("EDP should degrade slightly: ratio %v", edpRatio)
	}
	if edpRatio < 0.94 {
		t.Errorf("EDP degradation too large: %v", edpRatio)
	}
}

// Fig. 10: M-1 is tCDP-optimal at 4 cores; browser and social-gaming tasks
// degrade at 4 cores; All Tasks is optimal at 5 cores with ≥1.08× gain.
func TestFig10OptimalCores(t *testing.T) {
	s := Quest2()
	m1, _ := PaperVRTask(TaskM1)
	if n, _ := s.OptimalCores(m1); n != 4 {
		t.Errorf("M-1 optimal cores = %d, want 4", n)
	}
	for _, name := range []string{TaskB1, TaskSG1} {
		task, _ := PaperVRTask(name)
		res, err := s.Sweep(task)
		if err != nil {
			t.Fatal(err)
		}
		fourCore := res[0]
		if fourCore.Cores != 4 {
			t.Fatalf("sweep should start at 4 cores")
		}
		if fourCore.TCDPGain >= 1 {
			t.Errorf("%s should degrade at 4 cores, gain = %v", name, fourCore.TCDPGain)
		}
	}
	all, _ := PaperVRTask(TaskAll)
	n, _ := s.OptimalCores(all)
	if n != 5 {
		t.Errorf("All Tasks optimal cores = %d, want 5", n)
	}
	res, _ := s.Sweep(all)
	var gain5 float64
	for _, r := range res {
		if r.Cores == 5 {
			gain5 = r.TCDPGain
		}
	}
	if gain5 < 1.08 {
		t.Errorf("All Tasks 8→5 gain = %v, want ≥ 1.08 (paper: 1.08×)", gain5)
	}
}

func TestSweepShape(t *testing.T) {
	s := Quest2()
	g2, _ := PaperVRTask(TaskG2)
	res, err := s.Sweep(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("sweep length = %d", len(res))
	}
	for i, r := range res {
		if r.Cores != 4+i {
			t.Errorf("sweep order wrong at %d", i)
		}
		if r.RelativeFPS <= 0 || r.RelativeFPS > 1 {
			t.Errorf("relative FPS out of range: %v", r.RelativeFPS)
		}
	}
	// 8-core entry is the baseline: gain exactly 1, FPS exactly 1.
	last := res[len(res)-1]
	near(t, "baseline gain", last.TCDPGain, 1, 1e-12)
	near(t, "baseline FPS", last.RelativeFPS, 1, 1e-12)
}

func TestEvaluateErrors(t *testing.T) {
	s := Quest2()
	m1, _ := PaperVRTask(TaskM1)
	if _, err := s.Evaluate(m1, 3); err == nil {
		t.Error("3 cores should error")
	}
	bad := VRTask{Name: "bad"}
	if _, err := s.Evaluate(bad, 8); err == nil {
		t.Error("invalid profile should error")
	}
	if _, err := PaperVRTask("nope"); err == nil {
		t.Error("unknown task should error")
	}
}

// Property: for any valid histogram, slowdown(n) ≥ 1 and is monotone
// non-increasing in n; TLP is within [1, 8].
func TestSlowdownMonotoneProperty(t *testing.T) {
	f := func(raw [MaxCores]uint8) bool {
		var p TLPProfile
		sum := 0.0
		for i, v := range raw {
			p.Fraction[i] = float64(v) + 0.01
			sum += p.Fraction[i]
		}
		for i := range p.Fraction {
			p.Fraction[i] /= sum
		}
		if err := p.Validate(); err != nil {
			return false
		}
		tlp := p.TLP()
		if tlp < 1 || tlp > 8 {
			return false
		}
		const eps = 1e-9
		prev := math.Inf(1)
		for n := 1; n <= MaxCores; n++ {
			s := p.Slowdown(n)
			if s < 1-eps || s > prev+eps {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The tasks-per-lifetime bookkeeping must make CCI well-defined.
func TestEvaluateTaskCount(t *testing.T) {
	s := Quest2()
	m1, _ := PaperVRTask(TaskM1)
	r, _ := s.Evaluate(m1, 8)
	if r.Tasks <= 0 {
		t.Fatal("task count missing")
	}
	if _, err := r.CCI(); err != nil {
		t.Fatalf("CCI: %v", err)
	}
	// Task count = operational time / task delay.
	want := s.OperationalTime.Seconds() / s.TaskDelay.Seconds()
	near(t, "tasks", r.Tasks, want, 1e-9)
}

// Ablating Table V's fixed-power assumption: when power scales with the
// active core count, removing cores additionally saves operational carbon,
// so the optimal core count can only move down (or stay).
func TestScaledPowerFavorsFewerCores(t *testing.T) {
	fixed := Quest2()
	scaled := Quest2()
	scaled.PowerModel = ScaledPower
	scaled.UncorePowerFraction = 0.4
	for _, task := range PaperVRTasks() {
		nFixed, err := fixed.OptimalCores(task)
		if err != nil {
			t.Fatal(err)
		}
		nScaled, err := scaled.OptimalCores(task)
		if err != nil {
			t.Fatal(err)
		}
		if nScaled > nFixed {
			t.Errorf("%s: scaled-power optimum %d should not exceed fixed-power optimum %d",
				task.Name, nScaled, nFixed)
		}
	}
}

func TestScaledPowerValues(t *testing.T) {
	s := Quest2()
	s.PowerModel = ScaledPower
	s.UncorePowerFraction = 0.4
	// 8 cores: full power; 4 cores: 0.4 + 0.6·0.5 = 0.7 of full.
	if got := s.power(8); math.Abs(got.Watts()-s.Power.Watts()) > 1e-12 {
		t.Errorf("8-core power = %v", got)
	}
	want := s.Power.Watts() * 0.7
	if got := s.power(4); math.Abs(got.Watts()-want) > 1e-12 {
		t.Errorf("4-core power = %v, want %v", got, want)
	}
	// Out-of-range fraction falls back to 0.4.
	s.UncorePowerFraction = 2
	if got := s.power(4); math.Abs(got.Watts()-want) > 1e-12 {
		t.Errorf("fallback power = %v, want %v", got, want)
	}
	// Fixed model ignores n.
	f := Quest2()
	if f.power(4) != f.Power {
		t.Error("fixed power should not scale")
	}
}
