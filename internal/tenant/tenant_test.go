package tenant

import (
	"errors"
	"testing"
	"time"
)

const twoTenantFile = `{
  "allow_anonymous": true,
  "anonymous": {"max_queued_jobs": 1, "rate_per_sec": 2},
  "tenants": [
    {"name": "acme", "key": "key-acme", "weight": 4, "max_queued_jobs": 8,
     "max_grid_points": 1048576, "rate_per_sec": 50, "burst": 100},
    {"name": "zeta", "key": "key-zeta"}
  ]
}`

func TestOpenRegistry(t *testing.T) {
	r := Open()
	if r.Enforced() {
		t.Fatal("open registry must not be enforced")
	}
	for _, key := range []string{"", "anything", "key-acme"} {
		tn, err := r.Authenticate(key)
		if err != nil || !tn.IsAnonymous() {
			t.Fatalf("Authenticate(%q) = %v, %v; want anonymous", key, tn, err)
		}
		if tn.OwnerName() != "" {
			t.Fatalf("anonymous owner name = %q, want empty", tn.OwnerName())
		}
		if ok, _ := tn.Allow(time.Now()); !ok {
			t.Fatal("open-mode anonymous tenant must never rate-limit")
		}
	}
}

func TestParseAndAuthenticate(t *testing.T) {
	r, err := Parse([]byte(twoTenantFile))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enforced() {
		t.Fatal("key-file registry must be enforced")
	}
	acme, err := r.Authenticate("key-acme")
	if err != nil || acme.Name != "acme" {
		t.Fatalf("acme auth: %v, %v", acme, err)
	}
	if acme.Weight != 4 || acme.MaxQueuedJobs != 8 || acme.MaxGridPoints != 1<<20 {
		t.Fatalf("acme limits not preserved: %+v", acme)
	}
	zeta, err := r.Authenticate("key-zeta")
	if err != nil || zeta.Name != "zeta" {
		t.Fatalf("zeta auth: %v, %v", zeta, err)
	}
	if zeta.Weight != 1 {
		t.Fatalf("default weight = %v, want 1", zeta.Weight)
	}
	anon, err := r.Authenticate("")
	if err != nil || !anon.IsAnonymous() {
		t.Fatalf("anonymous auth: %v, %v", anon, err)
	}
	if anon.MaxQueuedJobs != 1 || anon.RatePerSec != 2 {
		t.Fatalf("anonymous limits not applied: %+v", anon)
	}
	if _, err := r.Authenticate("bogus"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown key: %v, want ErrUnauthorized", err)
	}

	names := []string{}
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name)
	}
	want := []string{"acme", "anonymous", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("tenant order %v, want %v", names, want)
		}
	}
}

func TestParseRejectsAnonymousKey(t *testing.T) {
	r, err := Parse([]byte(`{"tenants": [{"name": "a", "key": "k"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing key without allow_anonymous: %v, want ErrUnauthorized", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          `{"tenants": []}`,
		"no name":        `{"tenants": [{"key": "k"}]}`,
		"no key":         `{"tenants": [{"name": "a"}]}`,
		"reserved name":  `{"tenants": [{"name": "anonymous", "key": "k"}]}`,
		"dup name":       `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`,
		"dup key":        `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`,
		"negative limit": `{"tenants": [{"name": "a", "key": "k", "weight": -1}]}`,
		"not json":       `nope`,
	}
	for name, body := range cases {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, body)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tn := &Tenant{Name: "a", RatePerSec: 10, Burst: 2}
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Allow(t0); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := tn.Allow(t0)
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms]", retry)
	}
	// After the hinted delay a token has accrued.
	if ok, _ := tn.Allow(t0.Add(retry)); !ok {
		t.Fatal("request after retry hint still rejected")
	}
	// A long idle period refills only to the burst cap.
	tn2 := &Tenant{Name: "b", RatePerSec: 10, Burst: 2}
	tn2.Allow(t0)
	if got := tn2.RateRemaining(t0.Add(time.Hour)); got != 2 {
		t.Fatalf("refill past burst: %v tokens, want 2", got)
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	tn := &Tenant{Name: "a"}
	for i := 0; i < 1000; i++ {
		if ok, _ := tn.Allow(time.Unix(1000, 0)); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
	}
	if tn.RateRemaining(time.Unix(1000, 0)) != 0 {
		t.Fatal("disabled bucket should report 0 remaining")
	}
}

func TestBurstDefault(t *testing.T) {
	r, err := Parse([]byte(`{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 2.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Authenticate("k")
	if tn.Burst != 3 {
		t.Fatalf("defaulted burst = %d, want ceil(2.5) = 3", tn.Burst)
	}
}
