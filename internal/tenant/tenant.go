// Package tenant is cordobad's multi-tenant identity layer: a registry of
// API keys loaded from a static file, per-tenant fair-share weights, job
// quotas, and request-rate token buckets.
//
// The registry has two modes. Open mode (no key file) serves every request
// as one unlimited anonymous tenant — byte-identical to the single-tenant
// daemon. Enforced mode (a key file) authenticates requests by API key,
// optionally still admitting anonymous callers under their own limits.
// Quota *enforcement* lives with the resources being guarded: the request
// token bucket here, the queue and grid-point caps in internal/job, which
// receives each tenant's limits at submission.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// AnonymousName is the display name of the anonymous tenant. It is reserved:
// a key file may configure the anonymous tenant's limits but cannot claim
// the name for a keyed tenant.
const AnonymousName = "anonymous"

// ErrUnauthorized is returned by Authenticate for missing or unknown API
// keys when the registry is enforced; callers translate it to 401.
var ErrUnauthorized = errors.New("tenant: unauthorized")

// Tenant is one authenticated principal: identity, fair-share weight, and
// limits. Zero limits are unlimited.
type Tenant struct {
	Name string
	// Weight is the fair-share weight; the scheduler dequeues tenants in
	// proportion to it. Defaults to 1.
	Weight float64
	// MaxQueuedJobs caps jobs waiting in the queue; MaxGridPoints caps the
	// sum of grid points across queued + running jobs.
	MaxQueuedJobs int
	MaxGridPoints int64
	// RatePerSec and Burst shape the request token bucket; RatePerSec 0
	// disables rate limiting.
	RatePerSec float64
	Burst      int

	anonymous bool

	// Token-bucket state, guarded by mu: the balance as of last.
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// IsAnonymous reports whether this is the registry's anonymous tenant.
func (t *Tenant) IsAnonymous() bool { return t.anonymous }

// OwnerName is the name jobs are recorded under: empty for the anonymous
// tenant (preserving the single-tenant wire format), the tenant name
// otherwise.
func (t *Tenant) OwnerName() string {
	if t.anonymous {
		return ""
	}
	return t.Name
}

// Allow takes one request token at time now. When the bucket is empty it
// reports false with the delay until a token accrues — the Retry-After
// hint. A zero RatePerSec always allows.
func (t *Tenant) Allow(now time.Time) (bool, time.Duration) {
	if t.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refillLocked(now)
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	need := (1 - t.tokens) / t.RatePerSec
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// RateRemaining samples the bucket balance at time now without taking a
// token; 0 when rate limiting is disabled.
func (t *Tenant) RateRemaining(now time.Time) float64 {
	if t.RatePerSec <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refillLocked(now)
	return t.tokens
}

func (t *Tenant) refillLocked(now time.Time) {
	if t.last.IsZero() {
		t.last = now
		t.tokens = float64(t.Burst)
		return
	}
	dt := now.Sub(t.last).Seconds()
	if dt <= 0 {
		return
	}
	t.last = now
	t.tokens = math.Min(float64(t.Burst), t.tokens+dt*t.RatePerSec)
}

// Registry resolves API keys to tenants.
type Registry struct {
	enforced  bool
	anonymous *Tenant // nil when anonymous access is disabled
	byKey     map[string]*Tenant
	tenants   []*Tenant // stable name order, anonymous included when admitted
}

// Open returns the no-key-file registry: every request authenticates as one
// unlimited anonymous tenant.
func Open() *Registry {
	anon := &Tenant{Name: AnonymousName, Weight: 1, anonymous: true}
	return &Registry{anonymous: anon, byKey: map[string]*Tenant{}, tenants: []*Tenant{anon}}
}

// fileTenant is one entry of the key file.
type fileTenant struct {
	Name          string  `json:"name"`
	Key           string  `json:"key"`
	Weight        float64 `json:"weight,omitempty"`
	MaxQueuedJobs int     `json:"max_queued_jobs,omitempty"`
	MaxGridPoints int64   `json:"max_grid_points,omitempty"`
	RatePerSec    float64 `json:"rate_per_sec,omitempty"`
	Burst         int     `json:"burst,omitempty"`
}

// file is the key-file schema: a tenant list plus the anonymous policy.
type file struct {
	// AllowAnonymous admits requests without an API key as the anonymous
	// tenant; Anonymous optionally bounds that tenant (its name and key
	// fields are ignored).
	AllowAnonymous bool         `json:"allow_anonymous,omitempty"`
	Anonymous      *fileTenant  `json:"anonymous,omitempty"`
	Tenants        []fileTenant `json:"tenants"`
}

// Load reads and parses a key file.
func Load(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read key file: %w", err)
	}
	r, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Parse builds an enforced registry from key-file bytes.
func Parse(b []byte) (*Registry, error) {
	var f file
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("malformed key file: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, errors.New("key file defines no tenants")
	}
	r := &Registry{enforced: true, byKey: make(map[string]*Tenant, len(f.Tenants))}
	names := map[string]bool{AnonymousName: true}
	for i, ft := range f.Tenants {
		if ft.Name == "" {
			return nil, fmt.Errorf("tenant %d: missing name", i)
		}
		if ft.Name == AnonymousName {
			return nil, fmt.Errorf("tenant %d: name %q is reserved (use allow_anonymous)", i, AnonymousName)
		}
		if ft.Key == "" {
			return nil, fmt.Errorf("tenant %q: missing key", ft.Name)
		}
		if names[ft.Name] {
			return nil, fmt.Errorf("duplicate tenant name %q", ft.Name)
		}
		names[ft.Name] = true
		if _, dup := r.byKey[ft.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key already in use", ft.Name)
		}
		t, err := newTenant(ft, false)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", ft.Name, err)
		}
		r.byKey[ft.Key] = t
		r.tenants = append(r.tenants, t)
	}
	if f.AllowAnonymous {
		ft := fileTenant{}
		if f.Anonymous != nil {
			ft = *f.Anonymous
		}
		ft.Name = AnonymousName
		anon, err := newTenant(ft, true)
		if err != nil {
			return nil, fmt.Errorf("anonymous tenant: %w", err)
		}
		r.anonymous = anon
		r.tenants = append(r.tenants, anon)
	}
	sort.Slice(r.tenants, func(a, b int) bool { return r.tenants[a].Name < r.tenants[b].Name })
	return r, nil
}

func newTenant(ft fileTenant, anonymous bool) (*Tenant, error) {
	if ft.Weight < 0 || ft.MaxQueuedJobs < 0 || ft.MaxGridPoints < 0 || ft.RatePerSec < 0 || ft.Burst < 0 {
		return nil, errors.New("limits must be non-negative")
	}
	t := &Tenant{
		Name:          ft.Name,
		Weight:        ft.Weight,
		MaxQueuedJobs: ft.MaxQueuedJobs,
		MaxGridPoints: ft.MaxGridPoints,
		RatePerSec:    ft.RatePerSec,
		Burst:         ft.Burst,
		anonymous:     anonymous,
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	if t.RatePerSec > 0 && t.Burst == 0 {
		// A burst below the rate would reject steady traffic at the allowed
		// rate; default to one second's worth, at least 1.
		t.Burst = int(math.Max(1, math.Ceil(t.RatePerSec)))
	}
	return t, nil
}

// Enforced reports whether a key file backs the registry (as opposed to the
// open single-tenant mode).
func (r *Registry) Enforced() bool { return r.enforced }

// Authenticate resolves an API key. In open mode every key (including none)
// is the anonymous tenant. In enforced mode an empty key is the anonymous
// tenant when admitted, and unknown keys are ErrUnauthorized.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	if !r.enforced {
		return r.anonymous, nil
	}
	if key == "" {
		if r.anonymous != nil {
			return r.anonymous, nil
		}
		return nil, fmt.Errorf("%w: missing API key", ErrUnauthorized)
	}
	if t, ok := r.byKey[key]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("%w: unknown API key", ErrUnauthorized)
}

// Tenants lists every admitted tenant in stable name order.
func (r *Registry) Tenants() []*Tenant { return r.tenants }
