package grid

import (
	"fmt"
	"sort"

	"cordoba/internal/units"
)

// Named reference traces: the CI_use(t) shapes §IV-B describes, under
// stable names so the daemon can serve them by key (GET /v1/traces,
// POST /v1/schedule, and the ci_trace field of POST /v1/dse).

// Named wraps any trace under a stable registry name. The cumulative-trace
// engine unwraps it, so a Named Step still gets the closed-form path.
type Named struct {
	Trace
	Label string
}

// Name implements Trace.
func (n Named) Name() string { return n.Label }

// PaperGrid returns the paper's flat 380 g/kWh anchor grid (Table III).
func PaperGrid() Trace {
	return Constant{Label: "paper-grid", Intensity: 380}
}

// SolarDiurnal returns a solar-heavy grid swinging ±150 g/kWh around the
// paper's 380 g/kWh mean, cleanest at local noon.
func SolarDiurnal() Trace {
	return Named{Trace: Diurnal{Mean: 380, Swing: 150}, Label: "solar-diurnal"}
}

// DecarbRamp returns a decade-long decarbonization ramp from the paper's
// 380 g/kWh down to 100 g/kWh.
func DecarbRamp() Trace {
	return Named{Trace: Ramp{Start: 380, End: 100, Span: units.Years(10)}, Label: "decarb-ramp"}
}

// CoalRetirement returns a stepwise-cleaning grid: coal units retire in
// tranches at years 2, 4, and 7.
func CoalRetirement() Trace {
	s, err := NewStep(
		[]units.Time{units.Years(2), units.Years(4), units.Years(7)},
		[]units.CarbonIntensity{500, 380, 250, 150},
	)
	if err != nil {
		panic(err) // static data; unreachable
	}
	return Named{Trace: s, Label: "coal-retirement"}
}

// DuckDecarb composes the duck curve's daily shape onto the
// decarbonization ramp: the long-run trend decays while the time-of-day
// swing persists.
func DuckDecarb() Trace {
	duck := CaliforniaDuck()
	// Normalize by the duck's exact daily mean so the composed trace tracks
	// the ramp on average.
	cum, err := NewCumulative(duck, units.Days(1))
	if err != nil {
		panic(err) // static data; unreachable
	}
	mean, err := cum.AverageBetween(0, units.Days(1))
	if err != nil {
		panic(err)
	}
	base := Ramp{Start: 380, End: 100, Span: units.Years(10)}
	return Named{Trace: Compose{Base: base, Mod: duck, ModMean: mean}, Label: "duck-decarb"}
}

// NamedTraces returns the reference traces the daemon serves, keyed by
// their Name(), in a stable order.
func NamedTraces() []Trace {
	ts := []Trace{
		PaperGrid(),
		CaliforniaDuck(),
		SolarDiurnal(),
		DecarbRamp(),
		CoalRetirement(),
		DuckDecarb(),
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name() < ts[j].Name() })
	return ts
}

// TraceByName resolves a reference trace by its Name().
func TraceByName(name string) (Trace, error) {
	for _, t := range NamedTraces() {
		if t.Name() == name {
			return t, nil
		}
	}
	names := make([]string, 0, 6)
	for _, t := range NamedTraces() {
		names = append(names, t.Name())
	}
	return nil, fmt.Errorf("grid: unknown trace %q (have: %v)", name, names)
}
