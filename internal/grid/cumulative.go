package grid

import (
	"fmt"
	"math"
	"sort"

	"cordoba/internal/units"
)

// This file is the cumulative-trace engine: Cumulative precomputes the
// prefix integral
//
//	F(t) = ∫₀ᵗ CI(u) du        (gCO2e·s/kWh)
//
// so any window integral of eq. IV.7 becomes F(t1) − F(t0) — an O(log n)
// query instead of a fresh quadrature. The prefix is closed-form exact for
// Constant, Ramp, Step, and Empirical (all piecewise-polynomial), and uses
// edge-aligned Gauss–Legendre quadrature for Diurnal and Compose, with knots
// inserted at every discontinuity or kink so no segment is ever integrated
// across a non-smooth point.

// maxKnots bounds any materialized knot table (a periodic trace expanded
// over a long horizon can otherwise explode); beyond it the table thins to a
// uniform grid and exactness degrades gracefully to plain quadrature.
const maxKnots = 1 << 20

// gauss8 is the 8-point Gauss–Legendre rule on [-1, 1]: exact for
// polynomials up to degree 15 and never evaluates interval endpoints, so a
// discontinuity sitting exactly on a segment boundary is never sampled.
var gauss8 = [...]struct{ x, w float64 }{
	{-0.9602898564975363, 0.1012285362903763},
	{-0.7966664774136267, 0.2223810344533745},
	{-0.5255324099163290, 0.3137066458778873},
	{-0.1834346424956498, 0.3626837833783620},
	{0.1834346424956498, 0.3626837833783620},
	{0.5255324099163290, 0.3137066458778873},
	{0.7966664774136267, 0.2223810344533745},
	{0.9602898564975363, 0.1012285362903763},
}

// glIntegrate integrates f over [a, b] with the 8-point Gauss rule.
func glIntegrate(f func(float64) float64, a, b float64) float64 {
	if b <= a {
		return 0
	}
	mid, half := (a+b)/2, (b-a)/2
	sum := 0.0
	for _, n := range gauss8 {
		sum += n.w * f(mid+half*n.x)
	}
	return sum * half
}

// prefixer is the per-shape strategy behind Cumulative: ∫₀ᵗ CI(u) du for
// t ≥ 0 in gCO2e·s/kWh.
type prefixer interface {
	prefix(t float64) float64
}

// ---- closed forms ----

type constPrefix struct{ c float64 }

func (p constPrefix) prefix(t float64) float64 { return p.c * t }

type rampPrefix struct{ start, end, span float64 }

func (p rampPrefix) prefix(t float64) float64 {
	if p.span <= 0 {
		return p.end * t
	}
	if t <= p.span {
		// Linear CI: F(t) = start·t + (end−start)·t²/(2·span).
		return p.start*t + (p.end-p.start)*t*t/(2*p.span)
	}
	atSpan := (p.start + p.end) / 2 * p.span
	return atSpan + p.end*(t-p.span)
}

// stepPrefix carries Step's edges with the cumulative integral at each edge,
// so a query is one binary search plus one multiply.
type stepPrefix struct {
	edges  []float64 // strictly increasing
	levels []float64 // len = len(edges)+1
	cum    []float64 // cum[i] = F(edges[i])
}

func newStepPrefix(s Step) stepPrefix {
	p := stepPrefix{
		edges:  make([]float64, len(s.Edges)),
		levels: make([]float64, len(s.Levels)),
		cum:    make([]float64, len(s.Edges)),
	}
	for i, e := range s.Edges {
		p.edges[i] = e.Seconds()
	}
	for i, l := range s.Levels {
		p.levels[i] = float64(l)
	}
	prev, acc := 0.0, 0.0
	for i, e := range p.edges {
		acc += p.levels[i] * (e - prev)
		p.cum[i] = acc
		prev = e
	}
	return p
}

func (p stepPrefix) prefix(t float64) float64 {
	// i = number of edges at or before t; segment i applies at t.
	i := sort.SearchFloat64s(p.edges, t)
	// SearchFloat64s returns the first index with edges[i] >= t; an edge
	// exactly at t belongs to the earlier segment boundary, and Step.CI is
	// right-continuous, so both conventions integrate identically (the
	// boundary has measure zero). Partial segment from the previous edge:
	if i == 0 {
		return p.levels[0] * t
	}
	return p.cum[i-1] + p.levels[i]*(t-p.edges[i-1])
}

// periodicPrefix handles any periodic trace via one period's knot table:
// F(t) = ⌊t/P⌋·F(P) + F(t mod P). The partial inside a knot segment is
// delegated to `partial`, which is closed-form for piecewise-linear traces
// and Gauss quadrature for smooth ones.
type periodicPrefix struct {
	period    float64
	knots     []float64 // within-period knots; knots[0]=0, knots[last]=period
	cum       []float64 // cum[i] = ∫₀^knots[i] CI
	perPeriod float64
	partial   func(seg int, from, to float64) float64
}

func (p periodicPrefix) prefix(t float64) float64 {
	if t <= 0 {
		return 0
	}
	k := math.Floor(t / p.period)
	rem := t - k*p.period
	if rem >= p.period { // floating-point wrap at the boundary
		k++
		rem = 0
	}
	i := sort.SearchFloat64s(p.knots, rem)
	if i > 0 && (i >= len(p.knots) || p.knots[i] != rem) {
		i--
	}
	if i >= len(p.knots)-1 {
		i = len(p.knots) - 2
	}
	return k*p.perPeriod + p.cum[i] + p.partial(i, p.knots[i], rem)
}

// tablePrefix covers traces with no closed form or periodicity (Compose and
// unknown implementations): precomputed prefix values on an edge-aligned
// knot grid over [0, horizon], Gauss quadrature for the in-segment partial,
// and a slow-path fallback beyond the horizon.
type tablePrefix struct {
	tr      Trace
	knots   []float64 // knots[0] = 0, knots[last] = horizon
	cum     []float64
	horizon float64
}

func newTablePrefix(tr Trace, horizon float64) tablePrefix {
	ci := func(t float64) float64 { return float64(tr.CI(units.Time(t))) }
	knots := knotGrid(tr, 0, horizon)
	p := tablePrefix{tr: tr, knots: knots, cum: make([]float64, len(knots)), horizon: horizon}
	for i := 1; i < len(knots); i++ {
		p.cum[i] = p.cum[i-1] + glIntegrate(ci, knots[i-1], knots[i])
	}
	return p
}

func (p tablePrefix) prefix(t float64) float64 {
	if t <= 0 {
		return 0
	}
	ci := func(u float64) float64 { return float64(p.tr.CI(units.Time(u))) }
	if t > p.horizon {
		// Beyond the precomputed table: exact table up to the horizon, then
		// edge-aligned quadrature for the overhang (slow path, still exact
		// at every knot).
		tail := 0.0
		over := knotGrid(p.tr, p.horizon, t)
		for i := 1; i < len(over); i++ {
			tail += glIntegrate(ci, over[i-1], over[i])
		}
		return p.cum[len(p.cum)-1] + tail
	}
	i := sort.SearchFloat64s(p.knots, t)
	if i > 0 && (i >= len(p.knots) || p.knots[i] != t) {
		i--
	}
	if i >= len(p.knots)-1 {
		i = len(p.knots) - 2
	}
	return p.cum[i] + glIntegrate(ci, p.knots[i], t)
}

// ---- knot discovery ----

// unwrap strips Named wrappers so shape dispatch sees the concrete trace.
func unwrap(tr Trace) Trace {
	for {
		n, ok := tr.(Named)
		if !ok {
			return tr
		}
		tr = n.Trace
	}
}

// knotsIn returns the interior times in (a, b) where tr is non-smooth —
// step edges, ramp breaks, sample boundaries, clamp crossings — plus enough
// subdivision for accurate quadrature of smooth oscillating shapes.
func knotsIn(tr Trace, a, b float64) []float64 {
	var ks []float64
	add := func(t float64) {
		if t > a && t < b {
			ks = append(ks, t)
		}
	}
	switch s := unwrap(tr).(type) {
	case Constant:
	case Ramp:
		add(s.Span.Seconds())
	case Step:
		for _, e := range s.Edges {
			add(e.Seconds())
		}
	case Diurnal:
		appendPeriodic(&ks, diurnalKnots(s), units.SecondsPerDay, a, b)
	case Empirical:
		period := s.Period.Seconds()
		n := len(s.Samples)
		per := make([]float64, n)
		for i := range per {
			per[i] = float64(i) * period / float64(n)
		}
		appendPeriodic(&ks, per, period, a, b)
	case Compose:
		ks = append(ks, knotsIn(s.Base, a, b)...)
		ks = append(ks, knotsIn(s.Mod, a, b)...)
	default:
		// Unknown trace shape: uniform subdivision is the best we can do.
		const n = 1024
		for i := 1; i < n; i++ {
			add(a + (b-a)*float64(i)/n)
		}
	}
	return ks
}

// appendPeriodic expands one period's worth of knots across every period
// overlapping (a, b), bounded by maxKnots.
func appendPeriodic(ks *[]float64, per []float64, period, a, b float64) {
	if period <= 0 || b <= a {
		return
	}
	first := math.Floor(a / period)
	last := math.Ceil(b / period)
	if (last-first)*float64(len(per)+1) > maxKnots {
		// Degenerate period/horizon ratio: thin to a uniform grid.
		for i := 1; i < maxKnots; i++ {
			t := a + (b-a)*float64(i)/maxKnots
			*ks = append(*ks, t)
		}
		return
	}
	for k := first; k <= last; k++ {
		base := k * period
		if t := base; t > a && t < b {
			*ks = append(*ks, t)
		}
		for _, p := range per {
			if t := base + p; t > a && t < b {
				*ks = append(*ks, t)
			}
		}
	}
}

// diurnalKnots returns the within-period knots of a Diurnal trace: hourly
// subdivision for quadrature accuracy plus the exact clamp crossings where
// Mean + Swing·cos(φ) passes through zero.
func diurnalKnots(d Diurnal) []float64 {
	const day = units.SecondsPerDay
	ks := make([]float64, 0, 26)
	for h := 1; h < 24; h++ {
		ks = append(ks, float64(h)*day/24)
	}
	if sw := float64(d.Swing); sw != 0 {
		if r := -float64(d.Mean) / sw; r >= -1 && r <= 1 {
			phi := math.Acos(r)
			ks = append(ks, phi/(2*math.Pi)*day, (2*math.Pi-phi)/(2*math.Pi)*day)
		}
	}
	sort.Float64s(ks)
	return ks
}

// knotGrid assembles the sorted, deduplicated knot grid for [a, b],
// including both endpoints, capped at maxKnots.
func knotGrid(tr Trace, a, b float64) []float64 {
	ks := knotsIn(tr, a, b)
	ks = append(ks, a, b)
	sort.Float64s(ks)
	out := ks[:1]
	for _, t := range ks[1:] {
		if t > out[len(out)-1] {
			out = append(out, t)
		}
	}
	if len(out) > maxKnots {
		thinned := make([]float64, 0, maxKnots)
		stride := float64(len(out)-1) / float64(maxKnots-1)
		for i := 0; i < maxKnots; i++ {
			thinned = append(thinned, out[int(float64(i)*stride)])
		}
		thinned[len(thinned)-1] = out[len(out)-1]
		out = thinned
	}
	return out
}

// ---- the public engine ----

// Cumulative is a trace with its prefix integral F(t) = ∫₀ᵗ CI(u) du
// precomputed, turning every eq. IV.7 window integral into an O(log n)
// lookup. Construction cost is paid once; queries never re-run quadrature
// for closed-form shapes and only integrate a sub-segment for smooth ones.
//
// Cumulative is immutable after construction and safe for concurrent use.
type Cumulative struct {
	tr      Trace
	p       prefixer
	horizon units.Time
}

// DefaultHorizon is the table horizon used when a Compose or unknown trace
// is built without an explicit one: three years covers every lifetime the
// paper's studies sweep, and queries beyond it stay correct (they fall back
// to edge-aligned quadrature for the overhang).
const DefaultHorizon = units.Time(3 * units.SecondsPerYear)

// NewCumulative precomputes the prefix integral of tr. The horizon bounds
// the precomputed knot table for traces with no closed form or period
// (Compose, third-party implementations); zero selects DefaultHorizon.
// Closed-form and periodic traces ignore it — their prefix is valid for all
// t ≥ 0 at full precision.
func NewCumulative(tr Trace, horizon units.Time) (*Cumulative, error) {
	if tr == nil {
		return nil, fmt.Errorf("grid: nil trace")
	}
	if horizon < 0 {
		return nil, fmt.Errorf("grid: negative horizon %v", horizon)
	}
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	c := &Cumulative{tr: tr, horizon: horizon}
	switch s := unwrap(tr).(type) {
	case Constant:
		c.p = constPrefix{c: float64(s.Intensity)}
	case Ramp:
		c.p = rampPrefix{start: float64(s.Start), end: float64(s.End), span: s.Span.Seconds()}
	case Step:
		if len(s.Levels) != len(s.Edges)+1 {
			return nil, fmt.Errorf("grid: malformed step trace (use NewStep)")
		}
		c.p = newStepPrefix(s)
	case Empirical:
		if s.Period <= 0 || len(s.Samples) < 2 {
			return nil, fmt.Errorf("grid: malformed empirical trace (use NewEmpirical)")
		}
		c.p = newEmpiricalPrefix(s)
	case Diurnal:
		c.p = newDiurnalPrefix(s)
	default:
		c.p = newTablePrefix(tr, horizon.Seconds())
	}
	return c, nil
}

// newEmpiricalPrefix builds the exact periodic prefix of a piecewise-linear
// empirical trace: trapezoid sums at sample boundaries are not an
// approximation here, they are the closed form.
func newEmpiricalPrefix(e Empirical) periodicPrefix {
	n := len(e.Samples)
	period := e.Period.Seconds()
	h := period / float64(n)
	p := periodicPrefix{
		period: period,
		knots:  make([]float64, n+1),
		cum:    make([]float64, n+1),
	}
	samples := make([]float64, n+1)
	for i, s := range e.Samples {
		samples[i] = float64(s)
	}
	samples[n] = samples[0] // wrap toward sample 0
	for i := 0; i <= n; i++ {
		p.knots[i] = float64(i) * h
	}
	p.knots[n] = period
	for i := 1; i <= n; i++ {
		p.cum[i] = p.cum[i-1] + h*(samples[i-1]+samples[i])/2
	}
	p.perPeriod = p.cum[n]
	p.partial = func(seg int, from, to float64) float64 {
		d := to - from
		if d <= 0 {
			return 0
		}
		slope := (samples[seg+1] - samples[seg]) / h
		return samples[seg]*d + slope*d*d/2
	}
	return p
}

// newDiurnalPrefix builds the periodic prefix of the sinusoidal trace with
// edge-aligned Gauss quadrature: hourly knots plus the exact clamp
// crossings, so every integrated segment is smooth.
func newDiurnalPrefix(d Diurnal) periodicPrefix {
	const day = float64(units.SecondsPerDay)
	inner := diurnalKnots(d)
	knots := make([]float64, 0, len(inner)+2)
	knots = append(knots, 0)
	knots = append(knots, inner...)
	knots = append(knots, day)
	ci := func(t float64) float64 { return float64(d.CI(units.Time(t))) }
	p := periodicPrefix{period: day, knots: knots, cum: make([]float64, len(knots))}
	for i := 1; i < len(knots); i++ {
		p.cum[i] = p.cum[i-1] + glIntegrate(ci, knots[i-1], knots[i])
	}
	p.perPeriod = p.cum[len(knots)-1]
	p.partial = func(_ int, from, to float64) float64 {
		return glIntegrate(ci, from, to)
	}
	return p
}

// Trace returns the wrapped trace.
func (c *Cumulative) Trace() Trace { return c.tr }

// Horizon returns the precomputed-table horizon (informational; queries
// beyond it remain correct).
func (c *Cumulative) Horizon() units.Time { return c.horizon }

// Prefix returns F(t) = ∫₀ᵗ CI(u) du in gCO2e·s/kWh; t ≤ 0 returns 0.
func (c *Cumulative) Prefix(t units.Time) float64 {
	if t <= 0 {
		return 0
	}
	return c.p.prefix(t.Seconds())
}

// IntegralBetween returns ∫_{t0}^{t1} CI(u) du = F(t1) − F(t0) in
// gCO2e·s/kWh. Negative times clamp to zero; t1 < t0 yields the negated
// integral, preserving additivity.
func (c *Cumulative) IntegralBetween(t0, t1 units.Time) float64 {
	return c.Prefix(t1) - c.Prefix(t0)
}

// AverageBetween returns the exact time-average carbon intensity over
// [t0, t1].
func (c *Cumulative) AverageBetween(t0, t1 units.Time) (units.CarbonIntensity, error) {
	if t1 <= t0 {
		return 0, fmt.Errorf("grid: average needs t1 > t0, got [%v, %v]", t0, t1)
	}
	if k, ok := unwrap(c.tr).(Constant); ok {
		// Exact by definition — no quotient rounding.
		return k.Intensity, nil
	}
	return units.CarbonIntensity(c.IntegralBetween(t0, t1) / (t1 - t0).Seconds()), nil
}

// OperationalCarbon returns eq. IV.7 for a constant power draw over the
// window [t0, t1]: P·∫CI dt, converted to grams.
func (c *Cumulative) OperationalCarbon(p units.Power, t0, t1 units.Time) units.Carbon {
	return units.Carbon(c.IntegralBetween(t0, t1) * p.Watts() / units.JoulesPerKWh)
}
