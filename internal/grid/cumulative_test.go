package grid

import (
	"math"
	"testing"
	"testing/quick"

	"cordoba/internal/units"
)

// stepClosedForm is the independent reference for a Step trace under
// constant power: Σ level_i · overlap([edge_{i-1}, edge_i], [0, life]).
func stepClosedForm(s Step, p units.Power, life units.Time) float64 {
	sum := 0.0
	prev := 0.0
	for i, l := range s.Levels {
		end := life.Seconds()
		if i < len(s.Edges) && s.Edges[i].Seconds() < end {
			end = s.Edges[i].Seconds()
		}
		if end > prev {
			sum += float64(l) * (end - prev)
		}
		if i < len(s.Edges) {
			prev = s.Edges[i].Seconds()
		}
		if prev >= life.Seconds() {
			break
		}
	}
	return sum * p.Watts() / units.JoulesPerKWh
}

// Regression for the headline bug: composite quadrature used to smear step
// edges whenever its points didn't align with them. The edge-aligned path
// must match the closed-form piecewise sum to rounding for ANY steps value.
func TestIntegrateStepExactRegardlessOfSteps(t *testing.T) {
	s, err := NewStep(
		// Deliberately awkward edges: none lands on a uniform grid of the
		// step counts below.
		[]units.Time{units.Time(1234.567), units.Hours(7.3), units.Days(1.9)},
		[]units.CarbonIntensity{512, 64, 900, 123},
	)
	if err != nil {
		t.Fatal(err)
	}
	life := units.Days(3)
	want := stepClosedForm(s, 17.5, life)
	for _, steps := range []int{1, 2, 3, 7, 100, 999, 4096} {
		got, err := Integrate(s, ConstantPower(17.5), life, steps)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Grams()-want) / want; rel > 1e-12 {
			t.Errorf("steps=%d: got %.15g want %.15g (rel err %.3g)", steps, got.Grams(), want, rel)
		}
	}
}

// The old trapezoid rule got this wrong: with a single step over a
// two-level trace, it averaged the endpoint levels instead of weighting
// them by duration.
func TestIntegrateStepMisalignedWorstCase(t *testing.T) {
	s, err := NewStep([]units.Time{units.Hours(23)}, []units.CarbonIntensity{1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Integrate(s, ConstantPower(1000), units.Hours(24), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := stepClosedForm(s, 1000, units.Hours(24))
	if rel := math.Abs(got.Grams()-want) / want; rel > 1e-12 {
		t.Errorf("got %.15g want %.15g (rel err %.3g)", got.Grams(), want, rel)
	}
}

func TestNewStepRejectsNegativeEdgesAndLevels(t *testing.T) {
	if _, err := NewStep([]units.Time{-5}, []units.CarbonIntensity{1, 2}); err == nil {
		t.Error("negative edge should error")
	}
	if _, err := NewStep([]units.Time{5}, []units.CarbonIntensity{1, -2}); err == nil {
		t.Error("negative level should error")
	}
}

// Regression for the Empirical wrap bug: at the wrap boundary the old clamp
// (i = n-1 with frac > 1) extrapolated past the last sample. Interpolated
// values must stay within the sample range everywhere.
func TestEmpiricalStaysWithinSampleRange(t *testing.T) {
	traces := []Empirical{
		mustEmpirical(t, units.Hours(2), []units.CarbonIntensity{400, 100}),
		mustEmpirical(t, units.Time(1.0/3), []units.CarbonIntensity{10, 500, 20}),
		CaliforniaDuck(),
	}
	for _, e := range traces {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range e.Samples {
			lo = math.Min(lo, float64(s))
			hi = math.Max(hi, float64(s))
		}
		p := e.Period.Seconds()
		for k := 0; k < 5; k++ {
			base := float64(k) * p
			for _, tt := range []float64{
				base, math.Nextafter(base, 0), math.Nextafter(base, base+1),
				base + p/2, base + p - 1e-9, math.Nextafter(base+p, 0),
			} {
				ci := float64(e.CI(units.Time(tt)))
				if ci < lo-1e-9 || ci > hi+1e-9 {
					t.Errorf("%s: CI(%g) = %g outside sample range [%g, %g]", e.Name(), tt, ci, lo, hi)
				}
			}
		}
	}
}

func mustEmpirical(t *testing.T, period units.Time, samples []units.CarbonIntensity) Empirical {
	t.Helper()
	e, err := NewEmpirical("", period, samples)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Cumulative prefix must agree with direct edge-aligned quadrature on every
// registered trace shape, both inside and beyond any table horizon.
func TestCumulativeMatchesIntegrate(t *testing.T) {
	for _, tr := range NamedTraces() {
		cum, err := NewCumulative(tr, units.Years(1))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		for _, life := range []units.Time{
			units.Hours(1), units.Hours(13.7), units.Days(2.31), units.Days(400), // past the 1y horizon
		} {
			want, err := Integrate(tr, ConstantPower(1), life, 512)
			if err != nil {
				t.Fatal(err)
			}
			got := cum.OperationalCarbon(1, 0, life)
			rel := math.Abs(got.Grams()-want.Grams()) / math.Max(want.Grams(), 1e-30)
			if rel > 1e-9 {
				t.Errorf("%s over %v: cumulative %.12g vs integrate %.12g (rel %.3g)",
					tr.Name(), life, got.Grams(), want.Grams(), rel)
			}
		}
	}
}

// Window integrals through the engine must match integrating the shifted
// window directly.
func TestCumulativeWindowMatchesDirect(t *testing.T) {
	for _, tr := range NamedTraces() {
		cum, err := NewCumulative(tr, units.Days(30))
		if err != nil {
			t.Fatal(err)
		}
		t0, t1 := units.Hours(30), units.Hours(77.5)
		whole, _ := Integrate(tr, ConstantPower(1), t1, 2048)
		head, _ := Integrate(tr, ConstantPower(1), t0, 2048)
		want := whole.Grams() - head.Grams()
		got := cum.OperationalCarbon(1, t0, t1).Grams()
		if rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-30); rel > 1e-8 {
			t.Errorf("%s: window [%v,%v] = %.12g want %.12g", tr.Name(), t0, t1, got, want)
		}
	}
}

// Property: AverageCI of a constant trace is that constant, exactly.
func TestAverageCIConstantExact(t *testing.T) {
	f := func(ci uint32, hrs uint16) bool {
		c := units.CarbonIntensity(float64(ci%100000) / 7)
		life := units.Hours(0.5 + float64(hrs%5000))
		avg, err := AverageCI(Constant{Intensity: c}, life, 3)
		return err == nil && avg == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IntegralBetween is additive: F(a,b) + F(b,c) = F(a,c).
func TestIntegralBetweenAdditivity(t *testing.T) {
	for _, tr := range NamedTraces() {
		cum, err := NewCumulative(tr, units.Days(10))
		if err != nil {
			t.Fatal(err)
		}
		f := func(x, y, z uint32) bool {
			ts := []units.Time{
				units.Time(float64(x%1000000) * 25.3),
				units.Time(float64(y%1000000) * 25.3),
				units.Time(float64(z%1000000) * 25.3),
			}
			a, b, c := ts[0], ts[1], ts[2]
			sum := cum.IntegralBetween(a, b) + cum.IntegralBetween(b, c)
			direct := cum.IntegralBetween(a, c)
			scale := math.Max(math.Abs(cum.Prefix(a))+math.Abs(cum.Prefix(b))+math.Abs(cum.Prefix(c)), 1)
			return math.Abs(sum-direct) <= 1e-9*scale
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}

// Property: CI is non-negative everywhere on every reference trace.
func TestTracesNonNegativeProperty(t *testing.T) {
	for _, tr := range NamedTraces() {
		f := func(sec uint32, frac uint16) bool {
			tt := units.Time(float64(sec) + float64(frac)/65536)
			return tr.CI(tt) >= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}

// Property: Empirical is periodic: CI(t) == CI(t + Period).
func TestEmpiricalPeriodicityProperty(t *testing.T) {
	duck := CaliforniaDuck()
	f := func(sec uint32, frac uint16) bool {
		tt := units.Time(float64(sec%200000) + float64(frac)/65536)
		a := float64(duck.CI(tt))
		b := float64(duck.CI(tt + duck.Period))
		return math.Abs(a-b) <= 1e-6*math.Max(a, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCumulativePrefixMonotone(t *testing.T) {
	for _, tr := range NamedTraces() {
		cum, err := NewCumulative(tr, units.Days(5))
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for h := 0.0; h <= 24*8; h += 0.37 {
			f := cum.Prefix(units.Hours(h))
			if f < prev-1e-6 {
				t.Errorf("%s: prefix not monotone at %gh: %g < %g", tr.Name(), h, f, prev)
			}
			prev = f
		}
	}
}

func TestCumulativeValidation(t *testing.T) {
	if _, err := NewCumulative(nil, 0); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := NewCumulative(Constant{Intensity: 1}, -1); err == nil {
		t.Error("negative horizon should error")
	}
	if _, err := NewCumulative(Step{Levels: []units.CarbonIntensity{1, 2}}, 0); err == nil {
		t.Error("malformed step should error")
	}
	if _, err := NewCumulative(Empirical{Period: 1, Samples: nil}, 0); err == nil {
		t.Error("malformed empirical should error")
	}
	cum, err := NewCumulative(Constant{Intensity: 380}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cum.Horizon() != DefaultHorizon {
		t.Errorf("default horizon = %v", cum.Horizon())
	}
	if cum.Trace().Name() == "" {
		t.Error("trace accessor lost the trace")
	}
	if cum.Prefix(-5) != 0 {
		t.Error("negative prefix should clamp to 0")
	}
	if _, err := cum.AverageBetween(5, 5); err == nil {
		t.Error("empty average window should error")
	}
}

func TestTraceRegistry(t *testing.T) {
	ts := NamedTraces()
	if len(ts) < 6 {
		t.Fatalf("expected at least 6 named traces, got %d", len(ts))
	}
	seen := map[string]bool{}
	for _, tr := range ts {
		if tr.Name() == "" {
			t.Error("registry trace with empty name")
		}
		if seen[tr.Name()] {
			t.Errorf("duplicate trace name %q", tr.Name())
		}
		seen[tr.Name()] = true
		got, err := TraceByName(tr.Name())
		if err != nil {
			t.Errorf("TraceByName(%q): %v", tr.Name(), err)
		} else if got.Name() != tr.Name() {
			t.Errorf("TraceByName(%q) resolved %q", tr.Name(), got.Name())
		}
	}
	for _, want := range []string{"paper-grid", "california-duck", "solar-diurnal", "decarb-ramp", "coal-retirement", "duck-decarb"} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
	if _, err := TraceByName("no-such-grid"); err == nil {
		t.Error("unknown trace should error")
	}
}

// FuzzTraceIntegrate drives the engine with arbitrary Step and Empirical
// shapes and windows, checking the invariants that must hold for any valid
// trace: non-negative CI, non-negative and additive prefix integrals, and
// agreement between the closed-form engine and direct quadrature.
func FuzzTraceIntegrate(f *testing.F) {
	f.Add(uint8(0), 3600.0, 100.0, 7200.0, []byte{10, 200, 30, 90})
	f.Add(uint8(1), 86400.0, 50.0, 400.0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(0), 1.5, 0.25, 2.75, []byte{255, 0})
	f.Add(uint8(1), 0.001, 0.0005, 0.01, []byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, kind uint8, span, t0, t1 float64, raw []byte) {
		if len(raw) < 2 || len(raw) > 64 {
			return
		}
		if !(span > 1e-6 && span < 1e9) || math.IsNaN(t0) || math.IsNaN(t1) {
			return
		}
		clampT := func(v float64) units.Time {
			if !(v >= 0) {
				return 0
			}
			if v > 1e10 {
				v = 1e10
			}
			return units.Time(v)
		}
		a, b := clampT(t0), clampT(t1)
		if a > b {
			a, b = b, a
		}

		var tr Trace
		switch kind % 2 {
		case 0: // Step: edges spread over [0, span], levels from raw
			levels := make([]units.CarbonIntensity, len(raw))
			for i, r := range raw {
				levels[i] = units.CarbonIntensity(r) * 3
			}
			edges := make([]units.Time, len(raw)-1)
			for i := range edges {
				edges[i] = units.Time(span * float64(i+1) / float64(len(raw)))
			}
			s, err := NewStep(edges, levels)
			if err != nil {
				t.Fatalf("generated step invalid: %v", err)
			}
			tr = s
		default: // Empirical with period=span
			samples := make([]units.CarbonIntensity, len(raw))
			for i, r := range raw {
				samples[i] = units.CarbonIntensity(r)
			}
			e, err := NewEmpirical("fuzz", units.Time(span), samples)
			if err != nil {
				t.Fatalf("generated empirical invalid: %v", err)
			}
			tr = e
		}

		for _, probe := range []units.Time{0, a, b, units.Time(span / 3), units.Time(span * 2.7)} {
			ci := tr.CI(probe)
			if !(float64(ci) >= 0) || math.IsInf(float64(ci), 0) {
				t.Fatalf("CI(%v) = %v", probe, ci)
			}
		}

		cum, err := NewCumulative(tr, units.Time(span*4))
		if err != nil {
			t.Fatalf("cumulative: %v", err)
		}
		fa, fb := cum.Prefix(a), cum.Prefix(b)
		if fa < 0 || fb < fa {
			t.Fatalf("prefix not monotone: F(%v)=%g F(%v)=%g", a, fa, b, fb)
		}
		win := cum.IntegralBetween(a, b)
		if win < -1e-9*math.Max(fb, 1) {
			t.Fatalf("negative window integral %g", win)
		}
		mid := units.Time((a.Seconds() + b.Seconds()) / 2)
		sum := cum.IntegralBetween(a, mid) + cum.IntegralBetween(mid, b)
		if math.Abs(sum-win) > 1e-9*math.Max(fb, 1) {
			t.Fatalf("additivity broken: %g vs %g", sum, win)
		}

		if b > a && b.Seconds()-a.Seconds() < 1e8 {
			direct, err := Integrate(tr, ConstantPower(1), b, 64)
			if err != nil {
				t.Fatalf("integrate: %v", err)
			}
			head, err := Integrate(tr, ConstantPower(1), a, 64)
			if err != nil {
				t.Fatalf("integrate: %v", err)
			}
			want := direct.Grams() - head.Grams()
			got := cum.OperationalCarbon(1, a, b).Grams()
			scale := math.Max(math.Abs(direct.Grams()), 1e-12)
			if math.Abs(got-want) > 1e-6*scale {
				t.Fatalf("engine %.12g vs quadrature %.12g (trace %s, window [%v,%v])",
					got, want, tr.Name(), a, b)
			}
		}
	})
}
