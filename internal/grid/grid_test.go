package grid

import (
	"math"
	"testing"
	"testing/quick"

	"cordoba/internal/units"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-30) {
		t.Errorf("%s: got %v want %v", name, got, want)
	}
}

func TestConstantTrace(t *testing.T) {
	c := Constant{Label: "grid", Intensity: 380}
	for _, tm := range []units.Time{0, units.Hours(5), units.Years(3)} {
		if c.CI(tm) != 380 {
			t.Errorf("CI(%v) = %v", tm, c.CI(tm))
		}
	}
	if c.Name() != "grid" {
		t.Errorf("name = %q", c.Name())
	}
	if (Constant{Intensity: 10}).Name() == "" {
		t.Error("unnamed constant should synthesize a name")
	}
}

func TestDiurnalTrace(t *testing.T) {
	d := Diurnal{Mean: 400, Swing: 100}
	midnight := d.CI(0)
	noon := d.CI(units.Hours(12))
	near(t, "midnight", midnight.GramsPerKWh(), 500, 1e-9)
	near(t, "noon", noon.GramsPerKWh(), 300, 1e-9)
	// Periodic: same value a day later.
	near(t, "period", d.CI(units.Hours(36)).GramsPerKWh(), noon.GramsPerKWh(), 1e-9)
	// Never negative even with swing > mean.
	neg := Diurnal{Mean: 50, Swing: 100}
	if neg.CI(0) < 0 {
		t.Error("diurnal CI went negative")
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}

func TestRampTrace(t *testing.T) {
	r := Ramp{Start: 400, End: 100, Span: units.Years(10)}
	near(t, "start", r.CI(0).GramsPerKWh(), 400, 1e-9)
	near(t, "mid", r.CI(units.Years(5)).GramsPerKWh(), 250, 1e-9)
	near(t, "end", r.CI(units.Years(10)).GramsPerKWh(), 100, 1e-9)
	near(t, "beyond", r.CI(units.Years(20)).GramsPerKWh(), 100, 1e-9)
	near(t, "before", r.CI(-5).GramsPerKWh(), 400, 1e-9)
	zero := Ramp{Start: 400, End: 100, Span: 0}
	near(t, "zero span", zero.CI(0).GramsPerKWh(), 100, 1e-9)
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestStepTrace(t *testing.T) {
	s, err := NewStep(
		[]units.Time{units.Years(1), units.Years(2)},
		[]units.CarbonIntensity{500, 300, 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "first", s.CI(units.Days(100)).GramsPerKWh(), 500, 1e-9)
	near(t, "second", s.CI(units.Days(500)).GramsPerKWh(), 300, 1e-9)
	near(t, "third", s.CI(units.Years(5)).GramsPerKWh(), 100, 1e-9)
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestStepValidation(t *testing.T) {
	if _, err := NewStep(nil, nil); err == nil {
		t.Error("empty step should error")
	}
	if _, err := NewStep([]units.Time{1, 2}, []units.CarbonIntensity{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewStep([]units.Time{2, 1}, []units.CarbonIntensity{1, 2, 3}); err == nil {
		t.Error("non-increasing edges should error")
	}
}

func TestComposeTrace(t *testing.T) {
	base := Ramp{Start: 400, End: 200, Span: units.Years(4)}
	mod := Diurnal{Mean: 400, Swing: 100}
	c := Compose{Base: base, Mod: mod, ModMean: 400}
	// At t=0: base 400, mod 500 → 400·500/400 = 500.
	near(t, "compose t0", c.CI(0).GramsPerKWh(), 500, 1e-9)
	if c.Name() == "" {
		t.Error("empty name")
	}
	// Zero ModMean falls back to the base trace.
	c0 := Compose{Base: base, Mod: mod}
	near(t, "fallback", c0.CI(0).GramsPerKWh(), 400, 1e-9)
}

func TestIntegrateConstantMatchesClosedForm(t *testing.T) {
	// 8.3 W at 380 g/kWh for 1 hour = 3.154 g (Table V's C_op per hour).
	c, err := Integrate(Constant{Intensity: 380}, ConstantPower(8.3), units.Hours(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "constant integral", c.Grams(), 3.154, 1e-3)
}

func TestIntegrateDiurnalAveragesOut(t *testing.T) {
	// Over whole days the swing integrates away: equals the mean trace.
	d := Diurnal{Mean: 400, Swing: 150}
	got, err := Integrate(d, ConstantPower(10), units.Days(2), 2000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Integrate(Constant{Intensity: 400}, ConstantPower(10), units.Days(2), 10)
	near(t, "diurnal average", got.Grams(), want.Grams(), 1e-4)
}

func TestIntegrateRampIsMidpoint(t *testing.T) {
	r := Ramp{Start: 400, End: 200, Span: units.Years(1)}
	got, err := Integrate(r, ConstantPower(1), units.Years(1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Integrate(Constant{Intensity: 300}, ConstantPower(1), units.Years(1), 10)
	near(t, "ramp midpoint", got.Grams(), want.Grams(), 1e-6)
}

func TestIntegrateValidation(t *testing.T) {
	if _, err := Integrate(Constant{Intensity: 1}, ConstantPower(1), -1, 10); err == nil {
		t.Error("negative lifetime should error")
	}
	if _, err := Integrate(Constant{Intensity: 1}, ConstantPower(1), 10, 0); err == nil {
		t.Error("zero steps should error")
	}
}

func TestIntegrateTimeVaryingPower(t *testing.T) {
	// Power on for the first half only: half the constant-power carbon.
	life := units.Hours(2)
	p := func(t units.Time) units.Power {
		if t < units.Hours(1) {
			return 10
		}
		return 0
	}
	got, err := Integrate(Constant{Intensity: 380}, p, life, 20000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Integrate(Constant{Intensity: 380}, ConstantPower(10), units.Hours(1), 10)
	near(t, "half-on power", got.Grams(), want.Grams(), 1e-3)
}

func TestAverageCI(t *testing.T) {
	avg, err := AverageCI(Ramp{Start: 400, End: 200, Span: units.Years(1)}, units.Years(1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "avg CI", avg.GramsPerKWh(), 300, 1e-6)
	if _, err := AverageCI(Constant{Intensity: 1}, 0, 10); err == nil {
		t.Error("zero lifetime should error")
	}
}

// Property: for any constant trace and power, the integral is exactly
// CI·P·t (linearity sanity check on the quadrature).
func TestIntegrateLinearityProperty(t *testing.T) {
	f := func(ci, p, hrs uint16) bool {
		c := units.CarbonIntensity(ci % 1000)
		pw := units.Power(float64(p%1000) / 10)
		life := units.Hours(1 + float64(hrs%100))
		got, err := Integrate(Constant{Intensity: c}, ConstantPower(pw), life, 7)
		if err != nil {
			return false
		}
		want := c.Of(pw.Over(life))
		return math.Abs(got.Grams()-want.Grams()) <= 1e-9*math.Max(want.Grams(), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integral is monotone in lifetime for non-negative traces.
func TestIntegrateMonotoneProperty(t *testing.T) {
	tr := Diurnal{Mean: 300, Swing: 200}
	f := func(a, b uint16) bool {
		t1 := units.Hours(float64(a % 1000))
		t2 := units.Hours(float64(b % 1000))
		lo, hi := t1, t2
		if lo > hi {
			lo, hi = hi, lo
		}
		cLo, err1 := Integrate(tr, ConstantPower(5), lo, 500)
		cHi, err2 := Integrate(tr, ConstantPower(5), hi, 500)
		return err1 == nil && err2 == nil && cLo <= cHi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical("x", 0, []units.CarbonIntensity{1, 2}); err == nil {
		t.Error("zero period should error")
	}
	if _, err := NewEmpirical("x", 1, []units.CarbonIntensity{1}); err == nil {
		t.Error("single sample should error")
	}
	if _, err := NewEmpirical("x", 1, []units.CarbonIntensity{1, -2}); err == nil {
		t.Error("negative sample should error")
	}
}

func TestEmpiricalInterpolation(t *testing.T) {
	e, err := NewEmpirical("ramp", units.Hours(4), []units.CarbonIntensity{100, 200, 300, 400})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "sample 0", e.CI(0).GramsPerKWh(), 100, 1e-9)
	near(t, "sample 1", e.CI(units.Hours(1)).GramsPerKWh(), 200, 1e-9)
	// Halfway between samples 0 and 1.
	near(t, "interp", e.CI(units.Hours(0.5)).GramsPerKWh(), 150, 1e-9)
	// Wrap: last sample interpolates back toward the first.
	near(t, "wrap", e.CI(units.Hours(3.5)).GramsPerKWh(), 250, 1e-9)
	// Periodicity.
	near(t, "period", e.CI(units.Hours(5)).GramsPerKWh(), 200, 1e-9)
	if e.Name() != "ramp" {
		t.Errorf("name = %q", e.Name())
	}
	if (Empirical{Period: 1, Samples: []units.CarbonIntensity{1, 2}}).Name() == "" {
		t.Error("unnamed empirical should synthesize a name")
	}
}

func TestCaliforniaDuckShape(t *testing.T) {
	duck := CaliforniaDuck()
	noon := duck.CI(units.Hours(12))
	evening := duck.CI(units.Hours(19))
	night := duck.CI(units.Hours(2))
	if !(noon < night && night < evening) {
		t.Errorf("duck shape broken: noon %v, night %v, evening %v", noon, evening, night)
	}
	// Integrates cleanly over a day.
	avg, err := AverageCI(duck, units.Days(1), 2400)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 100 || avg > 400 {
		t.Errorf("daily average %v out of sample range", avg)
	}
}
