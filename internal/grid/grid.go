// Package grid models the use-phase carbon intensity of the electricity
// supply, CI_use(t), as a function of time — the quantity §IV-B identifies as
// a major source of uncertainty ("may change dramatically from year-to-year
// ... or depending on the time of day").
//
// A Trace is CI_use as a function of time since deployment. The package
// supplies the trace shapes the paper mentions (constant grids, diurnal
// solar-driven swings, multi-year decarbonization ramps) and numeric
// integration of eq. IV.7:
//
//	C_operational = ∫₀^t_life CI_use(t)·P(t) dt
package grid

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// Trace is a carbon-intensity time series: CI(t) for t seconds after
// deployment. Implementations must return non-negative intensities.
type Trace interface {
	CI(t units.Time) units.CarbonIntensity
	Name() string
}

// Constant is a flat grid at a fixed intensity.
type Constant struct {
	Label     string
	Intensity units.CarbonIntensity
}

// CI implements Trace.
func (c Constant) CI(units.Time) units.CarbonIntensity { return c.Intensity }

// Name implements Trace.
func (c Constant) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("constant(%v)", c.Intensity)
}

// Diurnal models a solar-heavy grid: intensity swings sinusoidally around
// Mean with amplitude Swing over a 24-hour period, cleanest at local noon.
type Diurnal struct {
	Mean  units.CarbonIntensity
	Swing units.CarbonIntensity // peak deviation from the mean; must be ≤ Mean
}

// CI implements Trace.
func (d Diurnal) CI(t units.Time) units.CarbonIntensity {
	phase := 2 * math.Pi * math.Mod(t.Seconds(), units.SecondsPerDay) / units.SecondsPerDay
	// cos(phase) is +1 at midnight (dirty) and −1 at noon (clean).
	ci := float64(d.Mean) + float64(d.Swing)*math.Cos(phase)
	if ci < 0 {
		ci = 0
	}
	return units.CarbonIntensity(ci)
}

// Name implements Trace.
func (d Diurnal) Name() string { return fmt.Sprintf("diurnal(%v±%v)", d.Mean, d.Swing) }

// Ramp models multi-year decarbonization: intensity moves linearly from
// Start at t=0 to End at t=Span, then stays at End.
type Ramp struct {
	Start, End units.CarbonIntensity
	Span       units.Time
}

// CI implements Trace.
func (r Ramp) CI(t units.Time) units.CarbonIntensity {
	if r.Span <= 0 || t >= r.Span {
		return r.End
	}
	if t <= 0 {
		return r.Start
	}
	frac := t.Seconds() / r.Span.Seconds()
	return units.CarbonIntensity(float64(r.Start) + frac*float64(r.End-r.Start))
}

// Name implements Trace.
func (r Ramp) Name() string { return fmt.Sprintf("ramp(%v→%v over %v)", r.Start, r.End, r.Span) }

// Step is a piecewise-constant trace: Levels[i] applies from Edges[i-1] to
// Edges[i] (Edges[len-1] onward is the last level).
type Step struct {
	Edges  []units.Time // strictly increasing boundaries, len = len(Levels)-1
	Levels []units.CarbonIntensity
}

// NewStep validates and constructs a Step trace.
func NewStep(edges []units.Time, levels []units.CarbonIntensity) (Step, error) {
	if len(levels) == 0 {
		return Step{}, fmt.Errorf("grid: step trace needs at least one level")
	}
	if len(edges) != len(levels)-1 {
		return Step{}, fmt.Errorf("grid: step trace needs len(edges) = len(levels)-1, got %d and %d", len(edges), len(levels))
	}
	for i, e := range edges {
		if e < 0 {
			return Step{}, fmt.Errorf("grid: step edge %d is negative (%v)", i, e)
		}
		if i > 0 && e <= edges[i-1] {
			return Step{}, fmt.Errorf("grid: step edges must be strictly increasing")
		}
	}
	for i, l := range levels {
		if l < 0 {
			return Step{}, fmt.Errorf("grid: step level %d is negative (%v)", i, l)
		}
	}
	return Step{Edges: edges, Levels: levels}, nil
}

// CI implements Trace.
func (s Step) CI(t units.Time) units.CarbonIntensity {
	for i, e := range s.Edges {
		if t < e {
			return s.Levels[i]
		}
	}
	return s.Levels[len(s.Levels)-1]
}

// Name implements Trace.
func (s Step) Name() string { return fmt.Sprintf("step(%d levels)", len(s.Levels)) }

// Compose multiplies a base trace by a diurnal modulation — e.g. a
// decarbonization ramp with daily solar swings on top.
type Compose struct {
	Base Trace
	Mod  Trace
	// ModMean normalizes the modulation: effective CI = Base·Mod/ModMean.
	ModMean units.CarbonIntensity
}

// CI implements Trace.
func (c Compose) CI(t units.Time) units.CarbonIntensity {
	if c.ModMean <= 0 {
		return c.Base.CI(t)
	}
	return units.CarbonIntensity(float64(c.Base.CI(t)) * float64(c.Mod.CI(t)) / float64(c.ModMean))
}

// Name implements Trace.
func (c Compose) Name() string { return fmt.Sprintf("%s × %s", c.Base.Name(), c.Mod.Name()) }

// Empirical is a trace built from sampled intensities (e.g. hourly grid
// data), linearly interpolated between samples and repeating with the given
// period — the shape of real grid-operator feeds.
type Empirical struct {
	Label string
	// Period is the span the samples cover; the trace repeats after it.
	Period units.Time
	// Samples are evenly spaced over [0, Period).
	Samples []units.CarbonIntensity
}

// NewEmpirical validates and constructs an empirical trace.
func NewEmpirical(label string, period units.Time, samples []units.CarbonIntensity) (Empirical, error) {
	if period <= 0 {
		return Empirical{}, fmt.Errorf("grid: empirical trace needs a positive period")
	}
	if len(samples) < 2 {
		return Empirical{}, fmt.Errorf("grid: empirical trace needs at least two samples, got %d", len(samples))
	}
	for i, s := range samples {
		if s < 0 {
			return Empirical{}, fmt.Errorf("grid: sample %d is negative", i)
		}
	}
	return Empirical{Label: label, Period: period, Samples: samples}, nil
}

// CI implements Trace.
func (e Empirical) CI(t units.Time) units.CarbonIntensity {
	n := len(e.Samples)
	pos := math.Mod(t.Seconds(), e.Period.Seconds())
	if pos < 0 {
		pos += e.Period.Seconds()
	}
	// Sample i covers phase i/n; interpolate toward the next (wrapping).
	x := pos / e.Period.Seconds() * float64(n)
	i := int(x)
	frac := x - float64(i)
	if i >= n {
		// pos/Period rounded up to 1 at the wrap boundary: that is phase 0
		// of the next period, not an extrapolation past the last sample.
		i, frac = 0, 0
	}
	a := float64(e.Samples[i])
	b := float64(e.Samples[(i+1)%n])
	return units.CarbonIntensity(a + frac*(b-a))
}

// Name implements Trace.
func (e Empirical) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return fmt.Sprintf("empirical(%d samples/%v)", len(e.Samples), e.Period)
}

// CaliforniaDuck returns a stylized "duck curve" daily trace: clean midday
// solar, dirty evening ramp — the canonical time-of-day CI variation that
// §IV-B cites ("depending on the time of day ... availability of renewable
// energy sources such as solar").
func CaliforniaDuck() Empirical {
	e, err := NewEmpirical("california-duck", units.Days(1), []units.CarbonIntensity{
		// Hourly from midnight: overnight gas baseline, solar valley
		// around noon, steep evening ramp.
		310, 305, 300, 300, 305, 315, 300, 260,
		210, 160, 130, 115, 110, 112, 125, 150,
		200, 280, 360, 390, 380, 360, 340, 320,
	})
	if err != nil {
		panic(err) // static data; unreachable
	}
	return e
}

// PowerProfile is the operational power draw as a function of time, P(t).
type PowerProfile func(t units.Time) units.Power

// ConstantPower returns a flat power profile.
func ConstantPower(p units.Power) PowerProfile {
	return func(units.Time) units.Power { return p }
}

// Integrate computes eq. IV.7 over [0, life]:
//
//	C_operational = ∫₀^life CI(t)·P(t) dt
//
// The quadrature is edge-aligned: [0, life] is first split at every
// discontinuity or kink of the trace (step edges, ramp breaks, sample
// boundaries, clamp crossings), then each smooth segment is integrated with
// Gauss–Legendre sub-steps. Because no rule ever straddles or samples a
// discontinuity, the result is exact (to rounding) for piecewise-polynomial
// traces under constant power regardless of `steps`; `steps` (≥1) only sets
// the minimum total sub-step resolution for smooth variation in CI·P.
func Integrate(tr Trace, p PowerProfile, life units.Time, steps int) (units.Carbon, error) {
	if life < 0 {
		return 0, fmt.Errorf("grid: negative lifetime %v", life)
	}
	if steps < 1 {
		return 0, fmt.Errorf("grid: need at least one integration step, got %d", steps)
	}
	if life == 0 {
		return 0, nil
	}
	integrand := func(tSec float64) float64 {
		t := units.Time(tSec)
		// CI is g/kWh, P is W: g/kWh · W = g/kWh · J/s; dividing by
		// J-per-kWh converts to g/s.
		return float64(tr.CI(t)) * p(t).Watts() / units.JoulesPerKWh
	}
	total := life.Seconds()
	knots := knotGrid(tr, 0, total)
	sum := 0.0
	for i := 1; i < len(knots); i++ {
		a, b := knots[i-1], knots[i]
		// Distribute the requested resolution across segments by length,
		// with at least one Gauss panel per segment.
		m := int(math.Ceil(float64(steps) * (b - a) / total))
		if m < 1 {
			m = 1
		}
		h := (b - a) / float64(m)
		for j := 0; j < m; j++ {
			sum += glIntegrate(integrand, a+float64(j)*h, a+float64(j+1)*h)
		}
	}
	return units.Carbon(sum), nil
}

// AverageCI returns the time-average carbon intensity of a trace over
// [0, life] through the cumulative-trace engine — exact for closed-form
// trace shapes. The steps parameter is retained for call-site compatibility
// and only validated.
func AverageCI(tr Trace, life units.Time, steps int) (units.CarbonIntensity, error) {
	if life <= 0 {
		return 0, fmt.Errorf("grid: lifetime must be positive, got %v", life)
	}
	if steps < 1 {
		return 0, fmt.Errorf("grid: need at least one integration step, got %d", steps)
	}
	cum, err := NewCumulative(tr, life)
	if err != nil {
		return 0, err
	}
	return cum.AverageBetween(0, life)
}
