package lifecycle

import (
	"math"
	"testing"

	"cordoba/internal/grid"
	"cordoba/internal/units"
)

// A Constant CITrace must reproduce the scalar CIUse path to rounding, and
// a decarbonizing trace must charge less operational carbon than the
// matching flat grid.
func TestCITraceEvaluation(t *testing.T) {
	s := DefaultService()
	scalar, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}

	s.CITrace = grid.Constant{Intensity: s.CIUse}
	traced, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(traced.Operation.Grams()-scalar.Operation.Grams()) / scalar.Operation.Grams()
	if rel > 1e-9 {
		t.Errorf("constant trace operation %.9g vs scalar %.9g (rel %.3g)",
			traced.Operation.Grams(), scalar.Operation.Grams(), rel)
	}
	if traced.Embodied != scalar.Embodied || traced.Energy != scalar.Energy {
		t.Error("trace must not change energy or embodied accounting")
	}

	s.CITrace = grid.Ramp{Start: s.CIUse, End: 50, Span: s.Horizon}
	ramped, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	if ramped.Operation >= scalar.Operation {
		t.Errorf("decarbonizing ramp should cut operation: %v vs %v", ramped.Operation, scalar.Operation)
	}

	s.CITrace = grid.Step{Levels: []units.CarbonIntensity{1, 2}} // malformed
	if _, err := s.Evaluate(units.Years(2)); err == nil {
		t.Error("malformed trace should surface an error")
	}
}

func TestValidate(t *testing.T) {
	good := DefaultService()
	if err := good.Validate(); err != nil {
		t.Fatalf("default service invalid: %v", err)
	}
	bad := []func(Service) Service{
		func(s Service) Service { s.Horizon = 0; return s },
		func(s Service) Service { s.NodeCadence = 0; return s },
		func(s Service) Service { s.StartNode = -1; return s },
		func(s Service) Service { s.StartNode = 99; return s },
		func(s Service) Service { s.TaskCycles = 0; return s },
		func(s Service) Service { s.TaskRate = 0; return s },
		func(s Service) Service { s.Gates = 0; return s },
		func(s Service) Service { s.Yield = 0; return s },
		func(s Service) Service { s.Yield = 1.5; return s },
	}
	for i, mut := range bad {
		if err := mut(good).Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
	if _, err := good.Evaluate(0); err == nil {
		t.Error("zero period should error")
	}
}

func TestRefreshCountAndPartialSegments(t *testing.T) {
	s := DefaultService()
	s.Horizon = units.Years(10)
	o, err := s.Evaluate(units.Years(3))
	if err != nil {
		t.Fatal(err)
	}
	// Segments: [0,3), [3,6), [6,9), [9,10) → 4 chips.
	if o.Refreshes != 4 {
		t.Errorf("refreshes = %d, want 4", o.Refreshes)
	}
	keep, _ := s.Evaluate(units.Years(10))
	if keep.Refreshes != 1 {
		t.Errorf("keep-forever refreshes = %d, want 1", keep.Refreshes)
	}
}

// §VII: frequent refresh lowers energy (newer nodes are more efficient) but
// raises embodied carbon (more chips manufactured).
func TestEnergyVersusEmbodiedDirections(t *testing.T) {
	s := DefaultService()
	eRatio, cRatio, err := s.EnergyVersusEmbodied(units.Years(2), units.Years(10))
	if err != nil {
		t.Fatal(err)
	}
	if eRatio >= 1 {
		t.Errorf("frequent refresh should lower energy: ratio %v", eRatio)
	}
	if cRatio <= 1 {
		t.Errorf("frequent refresh should raise embodied: ratio %v", cRatio)
	}
}

// Frequent refresh also lowers the mean task delay (newer nodes are faster).
func TestRefreshImprovesDelay(t *testing.T) {
	s := DefaultService()
	fast, _ := s.Evaluate(units.Years(2))
	slow, _ := s.Evaluate(units.Years(10))
	if fast.MeanDelay >= slow.MeanDelay {
		t.Errorf("refresh should lower mean delay: %v vs %v", fast.MeanDelay, slow.MeanDelay)
	}
}

// The tCDP optimum lies strictly between refresh-every-year and never — the
// balancing behaviour that makes tCDP the right lifetime metric (§VII).
func TestInteriorOptimum(t *testing.T) {
	s := DefaultService()
	best, err := s.Optimal(DefaultPeriods())
	if err != nil {
		t.Fatal(err)
	}
	yearly, _ := s.Evaluate(units.Years(1))
	never, _ := s.Evaluate(units.Years(10))
	if best.Outcome.TCDP() > yearly.TCDP() || best.Outcome.TCDP() > never.TCDP() {
		t.Fatalf("optimal policy (%v) worse than an endpoint", best.Period)
	}
	if best.Period == units.Years(1) && yearly.TCDP() < never.TCDP()*0.5 {
		t.Log("note: optimum at the yearly endpoint — embodied too cheap for these parameters")
	}
	if best.Period.InYears() < 1 || best.Period.InYears() > 10 {
		t.Errorf("optimal period %v out of candidate range", best.Period)
	}
}

// On a very clean grid, operational carbon barely matters, so keeping
// hardware longer must become more attractive than on a dirty grid.
func TestCleanGridFavorsLongerLifetime(t *testing.T) {
	dirty := DefaultService()
	dirty.CIUse = 820
	clean := DefaultService()
	clean.CIUse = 20
	bestDirty, err := dirty.Optimal(DefaultPeriods())
	if err != nil {
		t.Fatal(err)
	}
	bestClean, err := clean.Optimal(DefaultPeriods())
	if err != nil {
		t.Fatal(err)
	}
	if bestClean.Period < bestDirty.Period {
		t.Errorf("clean grid optimum (%v) should not refresh more often than dirty grid optimum (%v)",
			bestClean.Period, bestDirty.Period)
	}
}

func TestNodeSaturation(t *testing.T) {
	// Starting at the newest node, refresh buys no energy improvement, so
	// keep-forever must be tCDP-optimal.
	s := DefaultService()
	s.StartNode = 6 // 3 nm, the last node
	best, err := s.Optimal(DefaultPeriods())
	if err != nil {
		t.Fatal(err)
	}
	if best.Period != units.Years(10) {
		t.Errorf("at the newest node the optimum should be keep-forever, got %v", best.Period)
	}
}

func TestSweepAndErrors(t *testing.T) {
	s := DefaultService()
	if _, err := s.Sweep(nil); err == nil {
		t.Error("empty sweep should error")
	}
	res, err := s.Sweep(DefaultPeriods())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("sweep size = %d", len(res))
	}
	for _, r := range res {
		o := r.Outcome
		if o.Energy <= 0 || o.Embodied <= 0 || o.Operation <= 0 || o.MeanDelay <= 0 {
			t.Errorf("period %v: degenerate outcome %+v", r.Period, o)
		}
		if o.TotalCarbon() != o.Embodied+o.Operation {
			t.Error("total carbon identity broken")
		}
	}
}

func TestAmortizedEmbodiedRate(t *testing.T) {
	s := DefaultService()
	o, _ := s.Evaluate(units.Years(5))
	rate := o.AmortizedEmbodiedRate(s.Horizon)
	want := o.Embodied.Grams() / s.Horizon.InHours()
	if math.Abs(rate.Grams()-want) > 1e-9*want {
		t.Errorf("rate = %v, want %v", rate, want)
	}
	if !math.IsNaN(o.AmortizedEmbodiedRate(0).Grams()) {
		t.Error("zero horizon should be NaN")
	}
}

// Total energy is conserved: the sum over segments equals rate × horizon ×
// (time-weighted mean per-task energy); check via the two-node split.
func TestEnergyAccounting(t *testing.T) {
	s := DefaultService()
	s.Horizon = units.Years(4)
	s.NodeCadence = units.Years(2)
	two, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	// Two chips, equal spans: energy = rate·span·(E1 + E2).
	one, _ := s.Evaluate(units.Years(4))
	if two.Energy >= one.Energy {
		t.Errorf("second chip on a newer node should cut energy: %v vs %v", two.Energy, one.Energy)
	}
	if two.Embodied <= one.Embodied {
		t.Error("two chips should embody more than one")
	}
}
