package lifecycle

import (
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/device"
	"cordoba/internal/units"
)

// The nil-Model default must reproduce the historical scalar path exactly:
// each replacement chip priced straight through eq. IV.5 with the service's
// fixed yield.
func TestReplacementEmbodiedDefaultIsEqIV5(t *testing.T) {
	s := DefaultService()
	out, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	var want units.Carbon
	for start := units.Time(0); start < s.Horizon; start += units.Years(2) {
		node, proc := s.nodeAt(start)
		d := device.NewDesign(node)
		d.Gates = s.Gates
		e, err := proc.EmbodiedDie(s.Fab, d.Area(), s.Yield)
		if err != nil {
			t.Fatal(err)
		}
		want += e
	}
	if out.Embodied != want {
		t.Errorf("default backend embodied = %v, direct eq. IV.5 = %v", out.Embodied, want)
	}
}

// Swapping the backend repricess every refresh: the chiplet model must move
// the embodied term (and only the embodied term).
func TestServiceModelSwapsBackend(t *testing.T) {
	s := DefaultService()
	base, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Model = carbon.ChipletModel{}
	chiplet, err := s.Evaluate(units.Years(2))
	if err != nil {
		t.Fatal(err)
	}
	if chiplet.Embodied == base.Embodied {
		t.Error("chiplet backend did not change the embodied footprint")
	}
	if chiplet.Embodied <= 0 {
		t.Errorf("degenerate chiplet embodied %v", chiplet.Embodied)
	}
	if chiplet.Energy != base.Energy || chiplet.Operation != base.Operation ||
		chiplet.MeanDelay != base.MeanDelay || chiplet.Refreshes != base.Refreshes {
		t.Error("backend choice must only affect the embodied term")
	}
}
