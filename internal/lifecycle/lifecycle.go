// Package lifecycle models the hardware-lifetime design knob of §VII: how
// often should hardware be refreshed? Frequent refresh rides technology-node
// energy-efficiency improvements but pays embodied carbon for every new
// chip; long lifetimes amortize manufacturing but run on stale, less
// efficient silicon. tCDP captures the trade-off (§VII: "hardware lifetime
// results in trade-offs between energy efficiency and carbon footprint").
//
// A Service runs a fixed task arrival rate over a multi-year horizon.
// Technology nodes advance on a fixed cadence; each refresh deploys a chip
// on the newest node available at that moment.
package lifecycle

import (
	"fmt"
	"math"

	"cordoba/internal/carbon"
	"cordoba/internal/device"
	"cordoba/internal/grid"
	"cordoba/internal/units"
)

// Service describes the deployment whose refresh cadence is being optimized.
type Service struct {
	// Horizon is the total analysis window.
	Horizon units.Time
	// NodeCadence is the time between technology-node advances.
	NodeCadence units.Time
	// StartNode indexes device.Nodes()/carbon.Processes() for the node
	// available at t = 0.
	StartNode int
	// TaskCycles is the compute demand of one task; TaskRate is tasks/s.
	TaskCycles float64
	TaskRate   float64
	// Gates sizes the chip.
	Gates float64
	// Fab and CIUse fix the carbon accounting.
	Fab   carbon.Fab
	CIUse units.CarbonIntensity
	// CITrace, when non-nil, replaces the scalar CIUse with a time-varying
	// CI_use(t): each deployment span is charged its exact window integral
	// through the cumulative-trace engine. A Constant trace reproduces the
	// scalar path.
	CITrace grid.Trace
	// Yield for eq. IV.5.
	Yield float64
	// Model selects the embodied-carbon backend that prices each
	// replacement chip; nil selects ACT (the historical scalar path —
	// bit-identical to pricing the die directly with eq. IV.5).
	Model carbon.Model
}

// DefaultService returns a datacenter-flavoured service: a 50 M-gate chip
// deployed at 14 nm, nodes advancing every 2.5 years, analyzed over 10
// years on the paper's 380 g/kWh grid.
func DefaultService() Service {
	return Service{
		Horizon:     units.Years(10),
		NodeCadence: units.Years(2.5),
		StartNode:   2, // 14 nm
		TaskCycles:  2e8,
		TaskRate:    1,
		Gates:       5e7,
		Fab:         carbon.FabCoal,
		CIUse:       380,
		Yield:       0.95,
	}
}

// Validate checks the service parameters.
func (s Service) Validate() error {
	switch {
	case s.Horizon <= 0:
		return fmt.Errorf("lifecycle: horizon must be positive")
	case s.NodeCadence <= 0:
		return fmt.Errorf("lifecycle: node cadence must be positive")
	case s.StartNode < 0 || s.StartNode >= len(device.Nodes()):
		return fmt.Errorf("lifecycle: start node %d out of range", s.StartNode)
	case s.TaskCycles <= 0 || s.TaskRate <= 0 || s.Gates <= 0:
		return fmt.Errorf("lifecycle: task cycles, rate and gates must be positive")
	case s.Yield <= 0 || s.Yield > 1:
		return fmt.Errorf("lifecycle: yield must be in (0,1]")
	}
	return nil
}

// nodeAt returns the device node and fab characterization available at time t.
func (s Service) nodeAt(t units.Time) (device.Node, carbon.Process) {
	nodes := device.Nodes()
	procs := carbon.Processes()
	idx := s.StartNode + int(t.Seconds()/s.NodeCadence.Seconds())
	if idx >= len(nodes) {
		idx = len(nodes) - 1
	}
	return nodes[idx], procs[idx]
}

// Outcome is the lifetime assessment of one refresh policy.
type Outcome struct {
	Refreshes int
	Energy    units.Energy
	Embodied  units.Carbon
	Operation units.Carbon
	// MeanDelay is the time-weighted mean task delay over the horizon.
	MeanDelay units.Time
}

// TotalCarbon returns embodied plus operational carbon.
func (o Outcome) TotalCarbon() units.Carbon { return o.Embodied + o.Operation }

// TCDP returns the policy's total-carbon-delay product.
func (o Outcome) TCDP() float64 {
	return o.TotalCarbon().Grams() * o.MeanDelay.Seconds()
}

// Evaluate assesses refreshing every `period`: chips are deployed at t = 0,
// period, 2·period, …, each on the newest node at its deployment time.
func (s Service) Evaluate(period units.Time) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	if period <= 0 {
		return Outcome{}, fmt.Errorf("lifecycle: refresh period must be positive, got %v", period)
	}
	var cum *grid.Cumulative
	if s.CITrace != nil {
		var err error
		cum, err = grid.NewCumulative(s.CITrace, s.Horizon)
		if err != nil {
			return Outcome{}, err
		}
	}
	var out Outcome
	var delayWeighted float64
	for start := units.Time(0); start < s.Horizon; start += period {
		end := start + period
		if end > s.Horizon {
			end = s.Horizon
		}
		span := end - start
		node, proc := s.nodeAt(start)
		d := device.NewDesign(node)
		d.Gates = s.Gates
		taskDelay, taskEnergy := d.Run(s.TaskCycles)

		tasks := s.TaskRate * span.Seconds()
		spanEnergy := taskEnergy * units.Energy(tasks)
		out.Energy += spanEnergy
		if cum != nil {
			// The deployment draws constant average power over [start, end];
			// charge it the exact window integral of CI_use(t).
			out.Operation += cum.OperationalCarbon(spanEnergy.DividedBy(span), start, end)
		}
		emb, err := s.replacementEmbodied(proc, d.Area())
		if err != nil {
			return Outcome{}, err
		}
		out.Embodied += emb
		out.Refreshes++
		delayWeighted += taskDelay.Seconds() * span.Seconds()
	}
	if cum == nil {
		out.Operation = s.CIUse.Of(out.Energy)
	}
	out.MeanDelay = units.Time(delayWeighted / s.Horizon.Seconds())
	return out, nil
}

// replacementEmbodied prices one replacement chip through the service's
// embodied-carbon backend. The chip is a single die with the service's fixed
// yield; the ACT default reproduces proc.EmbodiedDie(fab, area, yield)
// exactly, while the chiplet/3D backends reprice every refresh under their
// integration models.
func (s Service) replacementEmbodied(proc carbon.Process, area units.Area) (units.Carbon, error) {
	model := s.Model
	if model == nil {
		model = carbon.DefaultModel()
	}
	bd, err := model.EmbodiedDesign(carbon.DesignSpec{
		Name: "refresh-chip",
		Fab:  s.Fab,
		Dies: []carbon.DieSpec{{Name: "chip", Area: area, Process: proc, Yield: s.Yield}},
	})
	if err != nil {
		return 0, err
	}
	return bd.Total, nil
}

// PolicyResult pairs a refresh period with its outcome.
type PolicyResult struct {
	Period  units.Time
	Outcome Outcome
}

// Sweep evaluates a set of candidate refresh periods.
func (s Service) Sweep(periods []units.Time) ([]PolicyResult, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("lifecycle: no candidate periods")
	}
	out := make([]PolicyResult, 0, len(periods))
	for _, p := range periods {
		o, err := s.Evaluate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, PolicyResult{Period: p, Outcome: o})
	}
	return out, nil
}

// Optimal returns the tCDP-minimizing refresh period among the candidates.
func (s Service) Optimal(periods []units.Time) (PolicyResult, error) {
	res, err := s.Sweep(periods)
	if err != nil {
		return PolicyResult{}, err
	}
	best := res[0]
	for _, r := range res[1:] {
		if r.Outcome.TCDP() < best.Outcome.TCDP() {
			best = r
		}
	}
	return best, nil
}

// DefaultPeriods returns the conventional candidate cadences: 1–10 years.
func DefaultPeriods() []units.Time {
	out := make([]units.Time, 0, 10)
	for y := 1; y <= 10; y++ {
		out = append(out, units.Years(float64(y)))
	}
	return out
}

// EnergyVersusEmbodied quantifies the §VII trade-off directly: the ratio of
// a frequent-refresh policy's energy and embodied carbon to a keep-forever
// policy's. Energy ratio < 1 and embodied ratio > 1 is the paper's claim.
func (s Service) EnergyVersusEmbodied(frequent, keep units.Time) (energyRatio, embodiedRatio float64, err error) {
	f, err := s.Evaluate(frequent)
	if err != nil {
		return 0, 0, err
	}
	k, err := s.Evaluate(keep)
	if err != nil {
		return 0, 0, err
	}
	if k.Energy == 0 || k.Embodied == 0 {
		return 0, 0, fmt.Errorf("lifecycle: degenerate keep policy")
	}
	return f.Energy.Joules() / k.Energy.Joules(), f.Embodied.Grams() / k.Embodied.Grams(), nil
}

// AmortizedEmbodiedRate returns embodied carbon per operational hour for a
// policy — the eq. IV.3 amortization view.
func (o Outcome) AmortizedEmbodiedRate(horizon units.Time) units.Carbon {
	if horizon <= 0 {
		return units.Carbon(math.NaN())
	}
	return o.Embodied / units.Carbon(horizon.InHours())
}
