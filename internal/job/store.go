package job

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// record is the on-disk form of a job: everything needed to resume after a
// crash — the original request, the last checkpoint, and the outcome.
type record struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	State      State           `json:"state"`
	Request    json.RawMessage `json:"request,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	Error      string          `json:"error,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started"`
	Finished   time.Time       `json:"finished"`
	Progress   Progress        `json:"progress"`
	Resumes    int             `json:"resumes"`
}

// persistLocked writes the job's file atomically (tmp + rename, same
// filesystem). A nil error with Dir unset is the in-memory mode.
func (m *Manager) persistLocked(j *job) error {
	if m.cfg.Dir == "" {
		return nil
	}
	rec := record{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		Request:    j.request,
		Result:     j.result,
		Checkpoint: j.checkpoint,
		Error:      j.errMsg,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Progress:   j.progress,
		Resumes:    j.resumes,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		m.log.Error("job persist marshal failed", "job", j.id, "err", err)
		return fmt.Errorf("job: persist %s: %w", j.id, err)
	}
	path := m.jobPath(j.id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		m.log.Error("job persist failed", "job", j.id, "err", err)
		return fmt.Errorf("job: persist %s: %w", j.id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		m.log.Error("job persist rename failed", "job", j.id, "err", err)
		return fmt.Errorf("job: persist %s: %w", j.id, err)
	}
	return nil
}

func (m *Manager) jobPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".json")
}

// removeFile deletes a pruned job's file; best-effort.
func (m *Manager) removeFile(id string) {
	if m.cfg.Dir == "" {
		return
	}
	if err := os.Remove(m.jobPath(id)); err != nil && !os.IsNotExist(err) {
		m.log.Warn("job file removal failed", "job", id, "err", err)
	}
}

// recover loads every job file under Dir. Terminal jobs become history;
// queued ones re-enter the queue; jobs that were running when the previous
// process died are requeued with their checkpoint intact, so their runner
// resumes rather than restarts. Unreadable files are skipped with a warning —
// one corrupt record must not take the service down.
func (m *Manager) recover() error {
	if err := os.MkdirAll(m.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("job: create dir: %w", err)
	}
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("job: read dir: %w", err)
	}
	var pending []*job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.cfg.Dir, name))
		if err != nil {
			m.log.Warn("job recovery: unreadable file", "file", name, "err", err)
			continue
		}
		var rec record
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" {
			m.log.Warn("job recovery: corrupt record", "file", name, "err", err)
			continue
		}
		j := &job{
			id:         rec.ID,
			kind:       rec.Kind,
			state:      rec.State,
			request:    rec.Request,
			result:     rec.Result,
			checkpoint: rec.Checkpoint,
			errMsg:     rec.Error,
			created:    rec.Created,
			started:    rec.Started,
			finished:   rec.Finished,
			progress:   rec.Progress,
			resumes:    rec.Resumes,
		}
		if !j.state.Terminal() {
			j.state = StateQueued
			j.started = time.Time{}
			pending = append(pending, j)
		}
		m.jobs[j.id] = j
	}
	sort.Slice(pending, func(a, b int) bool {
		if !pending[a].created.Equal(pending[b].created) {
			return pending[a].created.Before(pending[b].created)
		}
		return pending[a].id < pending[b].id
	})
	for _, j := range pending {
		m.queue = append(m.queue, j.id)
		m.persistLocked(j)
		m.log.Info("job recovered", "job", j.id, "kind", j.kind, "resumable", len(j.checkpoint) > 0)
	}
	return nil
}
