package job

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cordoba/api"
)

// Record is the persisted form of a job: everything needed to resume after a
// crash — the original request, the last checkpoint, and the outcome.
type Record struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       State           `json:"state"`
	Tenant      string          `json:"tenant,omitempty"`
	Priority    api.Priority    `json:"priority,omitempty"`
	Request     json.RawMessage `json:"request,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Checkpoint  json.RawMessage `json:"checkpoint,omitempty"`
	Error       string          `json:"error,omitempty"`
	Created     time.Time       `json:"created"`
	Started     time.Time       `json:"started"`
	Finished    time.Time       `json:"finished"`
	NotBefore   time.Time       `json:"not_before,omitempty"`
	CO2AvoidedG float64         `json:"co2_avoided_g,omitempty"`
	Points      int64           `json:"points,omitempty"`
	Progress    Progress        `json:"progress"`
	Resumes     int             `json:"resumes"`
}

// Store persists job records for crash recovery. Put must be atomic per
// record (a reader never observes a torn write); Load returns every record
// present; Delete is idempotent. Implementations are called under the
// manager's lock and should not block on anything slower than local disk.
type Store interface {
	Put(rec Record) error
	Load() ([]Record, error)
	Delete(id string) error
}

// CheckpointAdopter is the optional Store extension behind content-addressed
// adoption: given a kind and request payload it returns the job ID and
// checkpoint of a persisted record with the exact same work, letting a new
// submission resume where an orphaned job left off. See CASStore.
type CheckpointAdopter interface {
	AdoptCheckpoint(kind string, request json.RawMessage) (id string, cp json.RawMessage, ok bool)
}

// DirStore is the classic one-file-per-job store: <dir>/<id>.json written
// via tmp + rename.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: create dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Put writes the record's file atomically (tmp + rename, same filesystem).
func (s *DirStore) Put(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	path := s.path(rec.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	return nil
}

// Load reads every record under the directory. Unreadable or corrupt files
// are skipped — one bad record must not take the service down.
func (s *DirStore) Load() ([]Record, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("job: read dir: %w", err)
	}
	var out []Record
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Delete removes a record's file; missing files are not an error.
func (s *DirStore) Delete(id string) error {
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// recordOf snapshots a job into its persisted form.
func recordOf(j *job) Record {
	return Record{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Tenant:      j.tenant,
		Priority:    j.priority,
		Request:     j.request,
		Result:      j.result,
		Checkpoint:  j.checkpoint,
		Error:       j.errMsg,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		NotBefore:   j.notBefore,
		CO2AvoidedG: j.co2AvoidedG,
		Points:      j.points,
		Progress:    j.progress,
		Resumes:     j.resumes,
	}
}

// persistLocked writes the job through the store; a nil store is the
// in-memory mode.
func (m *Manager) persistLocked(j *job) error {
	if m.store == nil {
		return nil
	}
	if err := m.store.Put(recordOf(j)); err != nil {
		m.log.Error("job persist failed", "job", j.id, "err", err)
		return err
	}
	return nil
}

// removeRecord deletes a pruned job's record; best-effort.
func (m *Manager) removeRecord(id string) {
	if m.store == nil {
		return
	}
	if err := m.store.Delete(id); err != nil {
		m.log.Warn("job record removal failed", "job", id, "err", err)
	}
}

// recover loads every record from the store. Terminal jobs become history;
// queued ones re-enter their tenant's queue; jobs that were running when the
// previous process died are requeued with their checkpoint intact, so their
// runner resumes rather than restarts. Tenant weights are unknown at
// recovery (they travel with submissions) and default to 1 until the tenant
// next submits.
func (m *Manager) recover() error {
	recs, err := m.store.Load()
	if err != nil {
		return err
	}
	var pending []*job
	for _, rec := range recs {
		j := &job{
			id:          rec.ID,
			seq:         1,
			kind:        rec.Kind,
			tenant:      rec.Tenant,
			priority:    rec.Priority,
			notBefore:   rec.NotBefore,
			co2AvoidedG: rec.CO2AvoidedG,
			points:      rec.Points,
			state:       rec.State,
			request:     rec.Request,
			result:      rec.Result,
			checkpoint:  rec.Checkpoint,
			errMsg:      rec.Error,
			created:     rec.Created,
			started:     rec.Started,
			finished:    rec.Finished,
			progress:    rec.Progress,
			resumes:     rec.Resumes,
		}
		if !j.state.Terminal() {
			if j.state == StateRunning {
				// Interrupted mid-run: its window (if any) has opened and it
				// holds a checkpoint — resume promptly.
				j.notBefore = time.Time{}
			}
			j.state = StateQueued
			j.started = time.Time{}
			pending = append(pending, j)
		}
		m.jobs[j.id] = j
	}
	sort.Slice(pending, func(a, b int) bool {
		if !pending[a].created.Equal(pending[b].created) {
			return pending[a].created.Before(pending[b].created)
		}
		return pending[a].id < pending[b].id
	})
	for _, j := range pending {
		m.enqueueLocked(m.tenantStateLocked(j.tenant, 0), j)
		m.persistLocked(j)
		m.log.Info("job recovered", "job", j.id, "kind", j.kind, "resumable", len(j.checkpoint) > 0)
	}
	return nil
}
