package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitState polls until the job reaches the wanted state or times out.
func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() && want != st.State {
			t.Fatalf("job %s reached terminal state %q while waiting for %q (err %q)", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return Status{}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Stop(ctx)
	})
	return m
}

func TestSubmitRunResult(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	m.SetRunner("echo", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		rc.ReportProgress(Progress{Streamed: 42, Kept: 7})
		return rc.Request(), nil
	})
	m.Start()
	st, err := m.Submit("echo", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("submit status: %+v", st)
	}
	fin := waitState(t, m, st.ID, StateSucceeded)
	if !fin.HasResult || fin.Finished.IsZero() || fin.Started.IsZero() {
		t.Fatalf("final status incomplete: %+v", fin)
	}
	if fin.Progress.Streamed != 42 || fin.Progress.Kept != 7 {
		t.Fatalf("progress not recorded: %+v", fin.Progress)
	}
	res, _, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != `{"x":1}` {
		t.Fatalf("result = %s", res)
	}
}

func TestSubmitUnknownKind(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, err := m.Submit("nope", nil); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 2})
	m.SetRunner("block", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	m.Start()
	first, err := m.Submit("block", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	// Queue depth 2: two more fit, the third is rejected.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("block", nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit("block", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m.RetryAfter() <= 0 {
		t.Fatal("RetryAfter hint not set")
	}
	c := m.Counts()
	if c.Rejected != 1 || c.Queued != 2 || c.Running != 1 {
		t.Fatalf("counts after rejection: %+v", c)
	}
	close(gate)
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("wait", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	m.Start()
	st, err := m.Submit("wait", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, StateCanceled)
	if fin.Error != "" {
		t.Fatalf("canceled job carries error %q", fin.Error)
	}
	if c := m.Counts(); c.Canceled != 1 {
		t.Fatalf("canceled count = %d", c.Canceled)
	}
	// Canceling again is a no-op.
	if st2, err := m.Cancel(st.ID); err != nil || st2.State != StateCanceled {
		t.Fatalf("re-cancel: %v %+v", err, st2)
	}
}

func TestCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("block", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	m.Start()
	first, _ := m.Submit("block", nil)
	waitState(t, m, first.ID, StateRunning)
	queued, err := m.Submit("block", nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: %v %+v", err, st)
	}
}

func TestCancelNotFound(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, err := m.Cancel("jdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := m.Get("jdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRunnerErrorFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("boom", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return nil, fmt.Errorf("kaput")
	})
	m.Start()
	st, _ := m.Submit("boom", nil)
	fin := waitState(t, m, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "kaput") {
		t.Fatalf("error = %q", fin.Error)
	}
}

func TestRunnerPanicFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("panic", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		panic("oh no")
	})
	m.Start()
	st, _ := m.Submit("panic", nil)
	fin := waitState(t, m, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "panic") {
		t.Fatalf("error = %q", fin.Error)
	}
}

func TestListNewestFirst(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("echo", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := m.Submit("echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitState(t, m, st.ID, StateSucceeded)
		time.Sleep(2 * time.Millisecond) // distinct creation times
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs", len(list))
	}
	for i, st := range list {
		if want := ids[len(ids)-1-i]; st.ID != want {
			t.Fatalf("list[%d] = %s, want %s", i, st.ID, want)
		}
	}
}

// TestCrashResumeWithCheckpoint is the manager-level crash drill: a runner
// checkpoints, the manager stops mid-run (the "crash"), and a new manager on
// the same directory hands the job back to the runner with the saved
// checkpoint.
func TestCrashResumeWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	checkpointed := make(chan struct{})

	m1, err := NewManager(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.SetRunner("count", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		if err := rc.SaveCheckpoint(json.RawMessage(`{"done":5}`)); err != nil {
			return nil, err
		}
		close(checkpointed)
		<-ctx.Done() // simulate long work interrupted by shutdown
		return nil, ctx.Err()
	})
	m1.Start()
	st, err := m1.Submit("count", json.RawMessage(`{"n":10}`))
	if err != nil {
		t.Fatal(err)
	}
	<-checkpointed
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// The interrupted job was requeued, not failed.
	if got, err := m1.Get(st.ID); err != nil || got.State != StateQueued || !got.HasCheckpoint {
		t.Fatalf("after stop: %+v (err %v)", got, err)
	}

	var gotCheckpoint, gotRequest string
	m2 := newTestManager(t, Config{Workers: 1, Dir: dir})
	m2.SetRunner("count", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		gotCheckpoint = string(rc.Checkpoint())
		gotRequest = string(rc.Request())
		return json.RawMessage(`{"total":10}`), nil
	})
	m2.Start()
	fin := waitState(t, m2, st.ID, StateSucceeded)
	if gotCheckpoint != `{"done":5}` {
		t.Fatalf("resumed checkpoint = %q", gotCheckpoint)
	}
	if gotRequest != `{"n":10}` {
		t.Fatalf("resumed request = %q", gotRequest)
	}
	if fin.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", fin.Resumes)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil || string(res) != `{"total":10}` {
		t.Fatalf("result after resume: %s (err %v)", res, err)
	}
	if c := m2.Counts(); c.Resumed != 1 {
		t.Fatalf("resumed counter = %d", c.Resumed)
	}
}

func TestRecoveryKeepsTerminalHistory(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.SetRunner("echo", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	})
	m1.Start()
	st, _ := m1.Submit("echo", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := waitStateM(t, m1, st.ID, StateSucceeded)
	if err := m1.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, Dir: dir})
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateSucceeded || !got.HasResult || !got.Finished.Equal(done.Finished) {
		t.Fatalf("recovered history: %+v", got)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil || string(res) != `{"ok":true}` {
		t.Fatalf("recovered result: %s (err %v)", res, err)
	}
}

// waitStateM is waitState without the cleanup-registered manager helper.
func waitStateM(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	return waitState(t, m, id, want)
}

func TestRecoverySkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "jbad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Dir: dir})
	if got := len(m.List()); got != 0 {
		t.Fatalf("recovered %d jobs from corrupt dir", got)
	}
}

func TestHistoryPruned(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, Dir: dir, History: 2})
	m.SetRunner("echo", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	var last Status
	for i := 0; i < 5; i++ {
		st, err := m.Submit("echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		last = waitState(t, m, st.ID, StateSucceeded)
		time.Sleep(2 * time.Millisecond)
	}
	// Submission triggers pruning; one more bounds the history.
	gate := make(chan struct{})
	defer close(gate)
	m.SetRunner("block", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if _, err := m.Submit("block", nil); err != nil {
		t.Fatal(err)
	}
	term := 0
	for _, st := range m.List() {
		if st.State.Terminal() {
			term++
		}
	}
	if term > 2 {
		t.Fatalf("history holds %d terminal jobs, bound 2", term)
	}
	if _, err := m.Get(last.ID); err != nil {
		t.Fatalf("newest terminal job pruned: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 3 { // 2 history + 1 queued/running
		t.Fatalf("dir holds %d files after pruning", len(files))
	}
}

func TestStopIdempotentAndSubmitAfterStop(t *testing.T) {
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.SetRunner("echo", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return nil, nil
	})
	m.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// Submissions after stop queue but never run; they must not wedge.
	if _, err := m.Submit("echo", nil); err != nil {
		t.Fatal(err)
	}
}
