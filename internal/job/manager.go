package job

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// ErrQueueFull is returned by Submit when the queue is at capacity; callers
// translate it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("job: queue full")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("job: not found")

// ErrUnknownKind is returned by Submit for kinds without a registered runner.
var ErrUnknownKind = errors.New("job: no runner registered for kind")

// Defaults applied by NewManager.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 16
	DefaultHistory    = 256
	DefaultRetryAfter = 2 * time.Second
)

// Config tunes a Manager.
type Config struct {
	// Workers is the number of concurrent job executors; < 1 selects
	// DefaultWorkers.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs; < 1
	// selects DefaultQueueDepth. Jobs recovered from Dir are admitted past
	// the bound — dropping persisted work would be worse than a long queue.
	QueueDepth int
	// Dir persists one JSON file per job for crash recovery; empty keeps
	// jobs in memory only.
	Dir string
	// RetryAfter is the hint returned alongside ErrQueueFull; <= 0 selects
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// History bounds the number of terminal jobs retained (memory and disk);
	// < 1 selects DefaultHistory. Oldest-finished are pruned first.
	History int
	// Logger receives job lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Counts is an atomic snapshot of the manager's population and counters,
// exported to Prometheus by the server.
type Counts struct {
	Queued, Running                           int
	Succeeded, Failed, Canceled               int64
	Submitted, Resumed, Checkpoints, Rejected int64
}

// Manager owns the queue, the workers, and the job table.
type Manager struct {
	cfg     Config
	log     *slog.Logger
	runners map[string]Runner

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*job
	queue []string // job IDs, FIFO
	// counters (under mu)
	succeeded, failed, canceled     int64
	submitted, resumed, checkpoints int64
	rejected                        int64
	running                         int
	stopping                        bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// NewManager builds a manager and, when cfg.Dir is set, recovers persisted
// jobs: terminal ones become history, queued and interrupted-running ones are
// re-enqueued in creation order (running jobs keep their checkpoint, so their
// runner resumes instead of starting over). Call Start to begin executing.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers < 1 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.History < 1 {
		cfg.History = DefaultHistory
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		log:     log,
		runners: make(map[string]Runner),
		jobs:    make(map[string]*job),
		baseCtx: ctx,
		stop:    cancel,
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Dir != "" {
		if err := m.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	return m, nil
}

// SetRunner registers the executor for a job kind. Register every kind
// before Start; recovered jobs of unregistered kinds fail when dequeued.
func (m *Manager) SetRunner(kind string, r Runner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runners[kind] = r
}

// RetryAfter returns the backoff hint paired with ErrQueueFull.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Start launches the worker pool.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.stopping {
		return
	}
	m.started = true
	for w := 0; w < m.cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Stop cancels running jobs and waits for the workers to drain, up to ctx's
// deadline. Interrupted jobs go back to the queue with their checkpoint
// intact and are persisted, so a later manager on the same Dir resumes them.
func (m *Manager) Stop(ctx context.Context) error {
	m.mu.Lock()
	m.stopping = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop() // cancels every running job's context

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("job: shutdown timed out: %w", ctx.Err())
	}
}

// Submit enqueues a request under the given kind and returns the queued
// job's status. A full queue returns ErrQueueFull.
func (m *Manager) Submit(kind string, req json.RawMessage) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.runners[kind]; !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if m.queuedLocked() >= m.cfg.QueueDepth {
		m.rejected++
		return Status{}, ErrQueueFull
	}
	j := &job{
		id:      newID(),
		kind:    kind,
		state:   StateQueued,
		request: append(json.RawMessage(nil), req...),
		created: time.Now().UTC(),
	}
	m.jobs[j.id] = j
	m.queue = append(m.queue, j.id)
	m.submitted++
	m.persistLocked(j)
	m.pruneHistoryLocked()
	m.cond.Signal()
	m.log.Info("job queued", "job", j.id, "kind", kind)
	return j.status(), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// List returns every known job, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.After(out[b].Created)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Result returns a terminal job's result payload alongside its status.
// Non-terminal or failed jobs return a nil payload; the caller decides how
// to respond based on the status.
func (m *Manager) Result(id string) (json.RawMessage, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, ErrNotFound
	}
	return append(json.RawMessage(nil), j.result...), j.status(), nil
}

// Checkpoint returns a job's last saved checkpoint, nil when none exists.
// Coordinators use it to salvage a stalled worker's partial shard progress
// before requeueing the shard elsewhere.
func (m *Manager) Checkpoint(id string) (json.RawMessage, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append(json.RawMessage(nil), j.checkpoint...), nil
}

// Cancel requests cancellation: a queued job is canceled immediately, a
// running one is signaled through its context and reaches StateCanceled when
// its runner returns. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now().UTC()
		m.canceled++
		m.persistLocked(j)
		m.log.Info("job canceled while queued", "job", j.id)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		m.log.Info("job cancellation requested", "job", j.id)
	}
	return j.status(), nil
}

// Counts snapshots the population and lifetime counters.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counts{
		Queued:      m.queuedLocked(),
		Running:     m.running,
		Succeeded:   m.succeeded,
		Failed:      m.failed,
		Canceled:    m.canceled,
		Submitted:   m.submitted,
		Resumed:     m.resumed,
		Checkpoints: m.checkpoints,
		Rejected:    m.rejected,
	}
}

// queuedLocked counts jobs currently in StateQueued. The queue slice may
// hold IDs of jobs canceled while waiting, so count by state.
func (m *Manager) queuedLocked() int {
	n := 0
	for _, id := range m.queue {
		if j, ok := m.jobs[id]; ok && j.state == StateQueued {
			n++
		}
	}
	return n
}

// worker executes queued jobs until the manager stops.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *job
		for {
			if m.stopping {
				// Never start (or restart) work during shutdown — jobs
				// requeued by runOne stay queued for the next process.
				m.mu.Unlock()
				return
			}
			for len(m.queue) > 0 && j == nil {
				id := m.queue[0]
				m.queue = m.queue[1:]
				if cand, ok := m.jobs[id]; ok && cand.state == StateQueued {
					j = cand
				}
			}
			if j != nil {
				break
			}
			m.cond.Wait()
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.state = StateRunning
		j.started = time.Now().UTC()
		j.cancel = cancel
		m.running++
		if len(j.checkpoint) > 0 {
			j.resumes++
			m.resumed++
		}
		runner := m.runners[j.kind]
		m.persistLocked(j)
		m.mu.Unlock()

		m.runOne(ctx, cancel, j, runner)
	}
}

// runOne executes a single job and records the outcome.
func (m *Manager) runOne(ctx context.Context, cancel context.CancelFunc, j *job, runner Runner) {
	defer cancel()
	var (
		res json.RawMessage
		err error
	)
	if runner == nil {
		err = fmt.Errorf("%w: %q", ErrUnknownKind, j.kind)
	} else {
		res, err = m.safeRun(ctx, j, runner)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = res
		j.checkpoint = nil // the result supersedes it
		j.finished = time.Now().UTC()
		m.succeeded++
		m.log.Info("job succeeded", "job", j.id)
	case j.cancelRequested:
		j.state = StateCanceled
		j.errMsg = ""
		j.finished = time.Now().UTC()
		m.canceled++
		m.log.Info("job canceled", "job", j.id)
	case m.stopping && errors.Is(err, context.Canceled):
		// Interrupted by shutdown: back to the queue with the checkpoint
		// intact so the next manager on this Dir picks it up.
		j.state = StateQueued
		j.started = time.Time{}
		m.queue = append(m.queue, j.id)
		m.log.Info("job interrupted by shutdown, requeued", "job", j.id)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = time.Now().UTC()
		m.failed++
		m.log.Warn("job failed", "job", j.id, "err", err)
	}
	m.persistLocked(j)
	m.pruneHistoryLocked()
}

// safeRun shields the manager from panicking runners.
func (m *Manager) safeRun(ctx context.Context, j *job, runner Runner) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job: runner panic: %v", r)
		}
	}()
	return runner(ctx, &runContext{m: m, j: j})
}

// runContext is the manager's RunContext implementation.
type runContext struct {
	m *Manager
	j *job
}

func (rc *runContext) JobID() string { return rc.j.id }

func (rc *runContext) Request() json.RawMessage {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	return append(json.RawMessage(nil), rc.j.request...)
}

func (rc *runContext) Checkpoint() json.RawMessage {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	return append(json.RawMessage(nil), rc.j.checkpoint...)
}

func (rc *runContext) SaveCheckpoint(cp json.RawMessage) error {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	rc.j.checkpoint = append(json.RawMessage(nil), cp...)
	rc.m.checkpoints++
	return rc.m.persistLocked(rc.j)
}

func (rc *runContext) ReportProgress(p Progress) {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	rc.j.progress = p
}

// pruneHistoryLocked evicts the oldest-finished terminal jobs beyond the
// History bound, removing their files too.
func (m *Manager) pruneHistoryLocked() {
	var term []*job
	for _, j := range m.jobs {
		if j.state.Terminal() {
			term = append(term, j)
		}
	}
	excess := len(term) - m.cfg.History
	if excess <= 0 {
		return
	}
	sort.Slice(term, func(a, b int) bool { return term[a].finished.Before(term[b].finished) })
	for _, j := range term[:excess] {
		delete(m.jobs, j.id)
		m.removeFile(j.id)
	}
}

// newID returns a 12-hex-char random job ID.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("job: id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived after
// the Go version this module pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
