package job

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"cordoba/api"
)

// ErrQueueFull is returned by Submit when the queue is at capacity; callers
// translate it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("job: queue full")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("job: not found")

// ErrUnknownKind is returned by Submit for kinds without a registered runner.
var ErrUnknownKind = errors.New("job: no runner registered for kind")

// QuotaError is returned by SubmitJob when a per-tenant limit would be
// exceeded; callers translate it to 429 quota_exceeded with a Retry-After
// hint.
type QuotaError struct {
	Tenant   string // display name ("anonymous" for the anonymous tenant)
	Resource string // "queued_jobs" or "grid_points"
	Used     int64  // current usage
	Want     int64  // usage the submission would reach
	Max      int64  // the configured cap
}

func (e *QuotaError) Error() string {
	if e.Resource == "grid_points" {
		return fmt.Sprintf("tenant %q would have %d grid points in flight (max %d); retry after jobs finish",
			e.Tenant, e.Want, e.Max)
	}
	return fmt.Sprintf("tenant %q has %d queued jobs (max %d); retry after the queue drains",
		e.Tenant, e.Used, e.Max)
}

// Defaults applied by NewManager.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 16
	DefaultHistory    = 256
	DefaultRetryAfter = 2 * time.Second
)

// Config tunes a Manager.
type Config struct {
	// Workers is the number of concurrent job executors; < 1 selects
	// DefaultWorkers.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs across
	// all tenants; < 1 selects DefaultQueueDepth. Jobs recovered from the
	// store are admitted past the bound — dropping persisted work would be
	// worse than a long queue.
	QueueDepth int
	// Store persists one record per job for crash recovery; nil with Dir
	// set selects a DirStore there, nil with Dir empty keeps jobs in memory
	// only.
	Store Store
	// Dir is the DirStore shorthand used when Store is nil.
	Dir string
	// RetryAfter is the hint returned alongside ErrQueueFull and
	// QuotaError; <= 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// History bounds the number of terminal jobs retained (memory and disk);
	// < 1 selects DefaultHistory. Oldest-finished are pruned first.
	History int
	// Logger receives job lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Limits carries one tenant's scheduling weight and quota caps into a
// submission; the manager enforces them without owning tenant config.
type Limits struct {
	// Weight is the fair-share weight; <= 0 selects 1.
	Weight float64
	// MaxQueued caps the tenant's queued jobs; 0 is unlimited.
	MaxQueued int
	// MaxPoints caps the tenant's grid points across queued + running jobs;
	// 0 is unlimited.
	MaxPoints int64
}

// Submission is a fully-specified job submission.
type Submission struct {
	Kind    string
	Request json.RawMessage
	// Tenant is the owning tenant's name; empty is the anonymous tenant.
	Tenant string
	Limits Limits
	// Priority is the scheduling class; empty is batch.
	Priority api.Priority
	// NotBefore holds a deferrable job until the given time (the
	// launch-window start); zero runs as soon as a worker frees up.
	NotBefore time.Time
	// CO2AvoidedG is the operational carbon the deferral avoids versus an
	// immediate start, accounted in Counts.
	CO2AvoidedG float64
	// Points is the job's grid-point weight against MaxPoints.
	Points int64
}

// Counts is an atomic snapshot of the manager's population and counters,
// exported to Prometheus by the server.
type Counts struct {
	Queued, Running                           int
	Succeeded, Failed, Canceled               int64
	Submitted, Resumed, Checkpoints, Rejected int64
	// QuotaRejected counts submissions rejected by a per-tenant quota
	// (Rejected counts only global queue-full rejections).
	QuotaRejected int64
	// Deferred counts deferrable jobs held for a launch window; CO2AvoidedG
	// sums the grams of operational carbon those deferrals avoid.
	Deferred    int64
	CO2AvoidedG float64
	// Adopted counts fresh submissions that resumed from another job's
	// content-addressed checkpoint.
	Adopted int64
}

// TenantCount is one tenant's live population (TenantCounts).
type TenantCount struct {
	Queued  int
	Running int
	Points  int64 // grid points across queued + running jobs
}

// tenantState is the fair-share scheduler's per-tenant record: one FIFO
// queue per priority class (the deferrable queue is kept sorted by
// not-before time) and the stride-scheduling virtual-time pass.
type tenantState struct {
	name   string
	weight float64
	// pass is the tenant's virtual time: incremented by 1/weight per
	// dequeue, so heavier tenants accrue it slower and dequeue more often.
	// The scheduler always picks the eligible tenant with the least pass.
	pass    float64
	queues  [numPriorities][]string
	queued  int
	running int
	points  int64
}

// Manager owns the queue, the workers, and the job table.
type Manager struct {
	cfg     Config
	log     *slog.Logger
	store   Store
	runners map[string]Runner

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	tenants map[string]*tenantState
	// vclock tracks the largest pass handed out, so a newly active tenant
	// starts at the current virtual time instead of replaying banked credit.
	vclock    float64
	wakeTimer *time.Timer // arms the earliest deferrable not-before
	// counters (under mu)
	succeeded, failed, canceled     int64
	submitted, resumed, checkpoints int64
	rejected, quotaRejected         int64
	deferred, adopted               int64
	co2AvoidedG                     float64
	running                         int
	stopping                        bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// NewManager builds a manager and, when a store is configured, recovers
// persisted jobs: terminal ones become history, queued and
// interrupted-running ones are re-enqueued in creation order (running jobs
// keep their checkpoint, so their runner resumes instead of starting over).
// Call Start to begin executing.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers < 1 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.History < 1 {
		cfg.History = DefaultHistory
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		log:     log,
		store:   cfg.Store,
		runners: make(map[string]Runner),
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenantState),
		baseCtx: ctx,
		stop:    cancel,
	}
	m.cond = sync.NewCond(&m.mu)
	if m.store == nil && cfg.Dir != "" {
		ds, err := NewDirStore(cfg.Dir)
		if err != nil {
			cancel()
			return nil, err
		}
		m.store = ds
	}
	if m.store != nil {
		if err := m.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	return m, nil
}

// SetRunner registers the executor for a job kind. Register every kind
// before Start; recovered jobs of unregistered kinds fail when dequeued.
func (m *Manager) SetRunner(kind string, r Runner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runners[kind] = r
}

// RetryAfter returns the backoff hint paired with ErrQueueFull.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Start launches the worker pool.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.stopping {
		return
	}
	m.started = true
	for w := 0; w < m.cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Stop cancels running jobs and waits for the workers to drain, up to ctx's
// deadline. Interrupted jobs go back to the queue with their checkpoint
// intact and are persisted, so a later manager on the same store resumes
// them.
func (m *Manager) Stop(ctx context.Context) error {
	m.mu.Lock()
	m.stopping = true
	if m.wakeTimer != nil {
		m.wakeTimer.Stop()
		m.wakeTimer = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop() // cancels every running job's context

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("job: shutdown timed out: %w", ctx.Err())
	}
}

// Submit enqueues a request under the given kind for the anonymous tenant
// at batch priority — the single-tenant compatibility form of SubmitJob.
func (m *Manager) Submit(kind string, req json.RawMessage) (Status, error) {
	return m.SubmitJob(Submission{Kind: kind, Request: req})
}

// SubmitJob enqueues a fully-specified submission and returns the queued
// job's status. A full global queue returns ErrQueueFull; a tenant over one
// of its limits returns a *QuotaError.
func (m *Manager) SubmitJob(sub Submission) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.runners[sub.Kind]; !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownKind, sub.Kind)
	}
	if m.queuedLocked() >= m.cfg.QueueDepth {
		m.rejected++
		return Status{}, ErrQueueFull
	}
	ts := m.tenantStateLocked(sub.Tenant, sub.Limits.Weight)
	display := sub.Tenant
	if display == "" {
		display = "anonymous"
	}
	if sub.Limits.MaxQueued > 0 && ts.queued >= sub.Limits.MaxQueued {
		m.quotaRejected++
		return Status{}, &QuotaError{
			Tenant: display, Resource: "queued_jobs",
			Used: int64(ts.queued), Want: int64(ts.queued + 1), Max: int64(sub.Limits.MaxQueued),
		}
	}
	if sub.Limits.MaxPoints > 0 && ts.points+sub.Points > sub.Limits.MaxPoints {
		m.quotaRejected++
		return Status{}, &QuotaError{
			Tenant: display, Resource: "grid_points",
			Used: ts.points, Want: ts.points + sub.Points, Max: sub.Limits.MaxPoints,
		}
	}
	j := &job{
		id:     newID(),
		seq:    1, // state version 1: the queued snapshot
		kind:   sub.Kind,
		tenant: sub.Tenant,
		// Stored raw: the empty priority schedules as batch but stays
		// omitted on the wire, keeping single-tenant output byte-identical.
		priority:    sub.Priority,
		notBefore:   sub.NotBefore,
		co2AvoidedG: sub.CO2AvoidedG,
		points:      sub.Points,
		state:       StateQueued,
		request:     append(json.RawMessage(nil), sub.Request...),
		created:     time.Now().UTC(),
	}
	if j.priority != api.PriorityDeferrable {
		// Only deferrable jobs are held for a launch window.
		j.notBefore = time.Time{}
		j.co2AvoidedG = 0
	}
	// Content-addressed adoption: when the store knows a checkpoint for this
	// exact request from a job this manager is not actively running (a
	// worker that died elsewhere, or a failed attempt), seed the new job
	// with it so the runner resumes instead of starting over.
	if ad, ok := m.store.(CheckpointAdopter); ok {
		if prevID, cp, ok := ad.AdoptCheckpoint(sub.Kind, sub.Request); ok && len(cp) > 0 {
			if prev, live := m.jobs[prevID]; !live || prev.state.Terminal() {
				j.checkpoint = append(json.RawMessage(nil), cp...)
				m.adopted++
				m.log.Info("job adopted checkpoint", "job", j.id, "from", prevID)
			}
		}
	}
	m.jobs[j.id] = j
	m.enqueueLocked(ts, j)
	m.submitted++
	if j.priority == api.PriorityDeferrable {
		m.deferred++
		m.co2AvoidedG += j.co2AvoidedG
	}
	m.persistLocked(j)
	m.publishLocked(j, EventState)
	m.pruneHistoryLocked()
	m.cond.Signal()
	m.log.Info("job queued", "job", j.id, "kind", sub.Kind,
		"tenant", display, "priority", string(j.priority))
	return j.status(), nil
}

// tenantStateLocked returns (creating if needed) the tenant's scheduler
// state, refreshing its weight and aligning a newly active tenant's pass
// with the virtual clock so idle time does not bank scheduling credit.
func (m *Manager) tenantStateLocked(name string, weight float64) *tenantState {
	ts, ok := m.tenants[name]
	if !ok {
		ts = &tenantState{name: name, weight: 1}
		m.tenants[name] = ts
	}
	if weight > 0 {
		ts.weight = weight
	}
	if ts.queued == 0 && ts.pass < m.vclock {
		ts.pass = m.vclock
	}
	return ts
}

// enqueueLocked adds a queued job to its tenant's priority queue. The
// deferrable queue stays sorted by not-before so eligibility is a
// head-of-queue check.
func (m *Manager) enqueueLocked(ts *tenantState, j *job) {
	pri := priorityIndex(j.priority)
	q := ts.queues[pri]
	if pri == priorityIndex(api.PriorityDeferrable) {
		at := sort.Search(len(q), func(i int) bool {
			other, ok := m.jobs[q[i]]
			return ok && other.notBefore.After(j.notBefore)
		})
		q = append(q, "")
		copy(q[at+1:], q[at:])
		q[at] = j.id
	} else {
		q = append(q, j.id)
	}
	ts.queues[pri] = q
	ts.queued++
	ts.points += j.points
}

// eligibleHeadLocked returns the tenant's next runnable job — highest
// priority first, FIFO within a class, deferrable only once its not-before
// has passed — popping stale entries (canceled while queued) as it scans.
func (m *Manager) eligibleHeadLocked(ts *tenantState, now time.Time) (*job, int) {
	for pri := 0; pri < numPriorities; pri++ {
		q := ts.queues[pri]
		for len(q) > 0 {
			j, ok := m.jobs[q[0]]
			if !ok || j.state != StateQueued {
				q = q[1:]
				continue
			}
			if !j.notBefore.IsZero() && j.notBefore.After(now) {
				break // sorted: nothing behind it is eligible either
			}
			ts.queues[pri] = q
			return j, pri
		}
		ts.queues[pri] = q
	}
	return nil, 0
}

// nextLocked picks and pops the next job under weighted fair share: among
// tenants with an eligible job, the one with the least virtual time runs,
// and its pass advances by 1/weight.
func (m *Manager) nextLocked(now time.Time) *job {
	var (
		best    *tenantState
		bestJob *job
		bestPri int
	)
	for _, ts := range m.tenants {
		j, pri := m.eligibleHeadLocked(ts, now)
		if j == nil {
			continue
		}
		if best == nil || ts.pass < best.pass || (ts.pass == best.pass && ts.name < best.name) {
			best, bestJob, bestPri = ts, j, pri
		}
	}
	if best == nil {
		return nil
	}
	best.queues[bestPri] = best.queues[bestPri][1:]
	best.queued--
	best.running++
	w := best.weight
	if w <= 0 {
		w = 1
	}
	best.pass += 1 / w
	if best.pass > m.vclock {
		m.vclock = best.pass
	}
	return bestJob
}

// armWakeLocked schedules a broadcast at the earliest ineligible
// deferrable job's not-before, so a worker wakes exactly when the launch
// window opens.
func (m *Manager) armWakeLocked(now time.Time) {
	var earliest time.Time
	for _, ts := range m.tenants {
		q := ts.queues[priorityIndex(api.PriorityDeferrable)]
		for _, id := range q {
			j, ok := m.jobs[id]
			if !ok || j.state != StateQueued {
				continue
			}
			if j.notBefore.After(now) && (earliest.IsZero() || j.notBefore.Before(earliest)) {
				earliest = j.notBefore
			}
			break // sorted: the first live entry is the tenant's earliest
		}
	}
	if m.wakeTimer != nil {
		m.wakeTimer.Stop()
		m.wakeTimer = nil
	}
	if earliest.IsZero() {
		return
	}
	m.wakeTimer = time.AfterFunc(earliest.Sub(now), func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// List returns every known job, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.After(out[b].Created)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Result returns a terminal job's result payload alongside its status.
// Non-terminal or failed jobs return a nil payload; the caller decides how
// to respond based on the status.
func (m *Manager) Result(id string) (json.RawMessage, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, ErrNotFound
	}
	return append(json.RawMessage(nil), j.result...), j.status(), nil
}

// Checkpoint returns a job's last saved checkpoint, nil when none exists.
// Coordinators use it to salvage a stalled worker's partial shard progress
// before requeueing the shard elsewhere.
func (m *Manager) Checkpoint(id string) (json.RawMessage, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append(json.RawMessage(nil), j.checkpoint...), nil
}

// Cancel requests cancellation: a queued job is canceled immediately, a
// running one is signaled through its context and reaches StateCanceled when
// its runner returns. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now().UTC()
		m.canceled++
		if ts, ok := m.tenants[j.tenant]; ok {
			ts.queued--
			ts.points -= j.points
		}
		m.persistLocked(j)
		m.publishLocked(j, EventDone)
		m.log.Info("job canceled while queued", "job", j.id)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		m.log.Info("job cancellation requested", "job", j.id)
	}
	return j.status(), nil
}

// Counts snapshots the population and lifetime counters.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counts{
		Queued:        m.queuedLocked(),
		Running:       m.running,
		Succeeded:     m.succeeded,
		Failed:        m.failed,
		Canceled:      m.canceled,
		Submitted:     m.submitted,
		Resumed:       m.resumed,
		Checkpoints:   m.checkpoints,
		Rejected:      m.rejected,
		QuotaRejected: m.quotaRejected,
		Deferred:      m.deferred,
		CO2AvoidedG:   m.co2AvoidedG,
		Adopted:       m.adopted,
	}
}

// TenantCounts snapshots per-tenant populations, keyed by tenant name
// ("" for anonymous).
func (m *Manager) TenantCounts() map[string]TenantCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TenantCount, len(m.tenants))
	for name, ts := range m.tenants {
		out[name] = TenantCount{Queued: ts.queued, Running: ts.running, Points: ts.points}
	}
	return out
}

// queuedLocked counts jobs currently in StateQueued across all tenants.
func (m *Manager) queuedLocked() int {
	n := 0
	for _, ts := range m.tenants {
		n += ts.queued
	}
	return n
}

// worker executes queued jobs until the manager stops.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *job
		for {
			if m.stopping {
				// Never start (or restart) work during shutdown — jobs
				// requeued by runOne stay queued for the next process.
				m.mu.Unlock()
				return
			}
			if j = m.nextLocked(time.Now()); j != nil {
				break
			}
			m.armWakeLocked(time.Now())
			m.cond.Wait()
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.state = StateRunning
		j.started = time.Now().UTC()
		j.cancel = cancel
		m.running++
		if len(j.checkpoint) > 0 {
			j.resumes++
			m.resumed++
		}
		runner := m.runners[j.kind]
		m.persistLocked(j)
		m.publishLocked(j, EventState)
		m.mu.Unlock()

		m.runOne(ctx, cancel, j, runner)
	}
}

// runOne executes a single job and records the outcome.
func (m *Manager) runOne(ctx context.Context, cancel context.CancelFunc, j *job, runner Runner) {
	defer cancel()
	var (
		res json.RawMessage
		err error
	)
	if runner == nil {
		err = fmt.Errorf("%w: %q", ErrUnknownKind, j.kind)
	} else {
		res, err = m.safeRun(ctx, j, runner)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	ts := m.tenants[j.tenant] // exists: the job was enqueued under it
	ts.running--
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = res
		j.checkpoint = nil // the result supersedes it
		j.finished = time.Now().UTC()
		m.succeeded++
		ts.points -= j.points
		m.log.Info("job succeeded", "job", j.id)
	case j.cancelRequested:
		j.state = StateCanceled
		j.errMsg = ""
		j.finished = time.Now().UTC()
		m.canceled++
		ts.points -= j.points
		m.log.Info("job canceled", "job", j.id)
	case m.stopping && errors.Is(err, context.Canceled):
		// Interrupted by shutdown: back to the queue with the checkpoint
		// intact so the next manager on this store picks it up.
		j.state = StateQueued
		j.started = time.Time{}
		j.notBefore = time.Time{} // its window has opened; resume promptly
		ts.points -= j.points     // enqueueLocked re-adds them
		m.enqueueLocked(ts, j)
		m.persistLocked(j)
		m.publishLocked(j, EventState)
		m.log.Info("job interrupted by shutdown, requeued", "job", j.id)
		return
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = time.Now().UTC()
		m.failed++
		ts.points -= j.points
		m.log.Warn("job failed", "job", j.id, "err", err)
	}
	m.persistLocked(j)
	m.publishLocked(j, EventDone)
	m.pruneHistoryLocked()
}

// safeRun shields the manager from panicking runners.
func (m *Manager) safeRun(ctx context.Context, j *job, runner Runner) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job: runner panic: %v", r)
		}
	}()
	return runner(ctx, &runContext{m: m, j: j})
}

// runContext is the manager's RunContext implementation.
type runContext struct {
	m *Manager
	j *job
}

func (rc *runContext) JobID() string { return rc.j.id }

func (rc *runContext) Request() json.RawMessage {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	return append(json.RawMessage(nil), rc.j.request...)
}

func (rc *runContext) Checkpoint() json.RawMessage {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	return append(json.RawMessage(nil), rc.j.checkpoint...)
}

func (rc *runContext) SaveCheckpoint(cp json.RawMessage) error {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	rc.j.checkpoint = append(json.RawMessage(nil), cp...)
	rc.m.checkpoints++
	err := rc.m.persistLocked(rc.j)
	rc.m.publishLocked(rc.j, EventCheckpoint)
	return err
}

func (rc *runContext) ReportProgress(p Progress) {
	rc.m.mu.Lock()
	defer rc.m.mu.Unlock()
	rc.j.progress = p
	rc.m.publishLocked(rc.j, EventProgress)
}

// pruneHistoryLocked evicts the oldest-finished terminal jobs beyond the
// History bound, removing their files too.
func (m *Manager) pruneHistoryLocked() {
	var term []*job
	for _, j := range m.jobs {
		if j.state.Terminal() {
			term = append(term, j)
		}
	}
	excess := len(term) - m.cfg.History
	if excess <= 0 {
		return
	}
	sort.Slice(term, func(a, b int) bool { return term[a].finished.Before(term[b].finished) })
	for _, j := range term[:excess] {
		delete(m.jobs, j.id)
		m.removeRecord(j.id)
	}
}

// newID returns a 12-hex-char random job ID.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("job: id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived after
// the Go version this module pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
