package job

// Event streaming: each job carries a monotonic sequence number and a set of
// live watchers. Publication happens under the manager lock; each watcher
// has a small buffered channel drained oldest-first on overflow, so a slow
// SSE client sees a gappy but current stream (every event carries the full
// status snapshot, so gaps lose nothing but intermediate frames) and the
// terminal event is never dropped.

// EventType labels what changed.
type EventType string

const (
	// EventState marks a lifecycle transition (queued, running, requeued).
	EventState EventType = "state"
	// EventProgress carries a runner's progress snapshot.
	EventProgress EventType = "progress"
	// EventCheckpoint marks a durably saved checkpoint.
	EventCheckpoint EventType = "checkpoint"
	// EventDone is terminal: succeeded, failed, or canceled. The stream
	// closes after it.
	EventDone EventType = "done"
)

// Event is one job-stream entry: a per-job monotonic sequence number, the
// change kind, and the job's full status at that moment.
type Event struct {
	Seq    int64
	Type   EventType
	Status Status
}

// watcherBuffer is each subscriber's channel depth; overflow drops the
// oldest buffered event.
const watcherBuffer = 64

type watcher struct {
	ch     chan Event
	closed bool // guarded by the manager lock
}

// send delivers under the manager lock, evicting the oldest buffered event
// when full. The single-producer discipline (all sends hold the lock) makes
// the evict-then-retry loop terminate.
func (w *watcher) send(ev Event) {
	if w.closed {
		return
	}
	for {
		select {
		case w.ch <- ev:
			return
		default:
			select {
			case <-w.ch:
			default:
			}
		}
	}
}

func (w *watcher) close() {
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
}

// Watch subscribes to a job's event stream. The first event is a snapshot of
// the job's current status (type EventDone if it is already terminal, in
// which case the channel closes right after). The returned cancel func is
// idempotent and must be called to release the subscription.
//
// The snapshot carries the job's current sequence number rather than a fresh
// one: seq identifies a state version, so a client that reconnects with
// ?after=<last seen> is spared the snapshot exactly when nothing changed
// while it was away.
func (m *Manager) Watch(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	w := &watcher{ch: make(chan Event, watcherBuffer)}
	typ := EventState
	if j.state.Terminal() {
		typ = EventDone
	}
	w.send(Event{Seq: j.seq, Type: typ, Status: j.status()})
	if typ == EventDone {
		w.close()
		return w.ch, func() {}, nil
	}
	j.watchers = append(j.watchers, w)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, other := range j.watchers {
			if other == w {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				break
			}
		}
		w.close()
	}
	return w.ch, cancel, nil
}

// publishLocked fans an event out to the job's watchers; EventDone closes
// every stream. The sequence number advances even with nobody watching — it
// versions the job's state, and a watcher arriving later must be able to
// tell its stale ?after= position from the current version.
func (m *Manager) publishLocked(j *job, typ EventType) {
	j.seq++
	if len(j.watchers) == 0 && typ != EventDone {
		return
	}
	ev := Event{Seq: j.seq, Type: typ, Status: j.status()}
	for _, w := range j.watchers {
		w.send(ev)
	}
	if typ == EventDone {
		for _, w := range j.watchers {
			w.close()
		}
		j.watchers = nil
	}
}
