package job

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestCASStoreRoundTrip(t *testing.T) {
	s, err := NewCASStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		ID: "j1", Kind: "dse", State: StateRunning,
		Request:    json.RawMessage(`{"cfg":1}`),
		Checkpoint: json.RawMessage(`{"cursor":5}`),
		Created:    time.Unix(100, 0).UTC(),
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "j1" || string(got[0].Checkpoint) != `{"cursor":5}` {
		t.Fatalf("Load = %+v", got)
	}
	id, cp, ok := s.AdoptCheckpoint("dse", json.RawMessage(`{"cfg":1}`))
	if !ok || id != "j1" || string(cp) != `{"cursor":5}` {
		t.Fatalf("AdoptCheckpoint = %q, %s, %v", id, cp, ok)
	}
	// A different request or kind misses.
	if _, _, ok := s.AdoptCheckpoint("dse", json.RawMessage(`{"cfg":2}`)); ok {
		t.Fatal("adopted a checkpoint for different work")
	}
	if _, _, ok := s.AdoptCheckpoint("other", json.RawMessage(`{"cfg":1}`)); ok {
		t.Fatal("adopted a checkpoint across kinds")
	}
	if err := s.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Load(); len(got) != 0 {
		t.Fatalf("record survived Delete: %+v", got)
	}
}

// TestCASStoreSlotTakeover pins last-writer-wins: when a second job with
// identical work overwrites the slot, deleting the first job's ID leaves the
// second job's record alone.
func TestCASStoreSlotTakeover(t *testing.T) {
	s, err := NewCASStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"cfg":1}`)
	if err := s.Put(Record{ID: "j1", Kind: "dse", Request: req}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{ID: "j2", Kind: "dse", Request: req, Checkpoint: json.RawMessage(`{"c":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Load()
	if len(got) != 1 || got[0].ID != "j2" {
		t.Fatalf("slot lost after stale delete: %+v", got)
	}
}

// TestCASAdoptionOnSubmit is the orphan-recovery path: a store holding a
// failed job's checkpoint seeds a brand-new submission of the same work, so
// the runner resumes instead of starting over.
func TestCASAdoptionOnSubmit(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewCASStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"sweep":"a"}`)
	orphan := Record{
		ID: "jdeadbeef0000", Kind: "dse", State: StateFailed,
		Request: req, Checkpoint: json.RawMessage(`{"cursor":7}`),
		Error:   "worker lost",
		Created: time.Unix(50, 0).UTC(), Finished: time.Unix(60, 0).UTC(),
	}
	if err := seed.Put(orphan); err != nil {
		t.Fatal(err)
	}

	store, err := NewCASStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Workers: 1, Store: store})
	var sawCheckpoint json.RawMessage
	m.SetRunner("dse", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		sawCheckpoint = rc.Checkpoint()
		return json.RawMessage(`{"done":true}`), nil
	})
	m.Start()
	st, err := m.Submit("dse", req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == orphan.ID {
		t.Fatal("submission reused the orphan's ID")
	}
	if !st.HasCheckpoint {
		t.Fatalf("fresh submission did not adopt the orphan checkpoint: %+v", st)
	}
	waitState(t, m, st.ID, StateSucceeded)
	if string(sawCheckpoint) != `{"cursor":7}` {
		t.Fatalf("runner saw checkpoint %s, want the orphan's", sawCheckpoint)
	}
	if c := m.Counts(); c.Adopted != 1 {
		t.Fatalf("Counts.Adopted = %d, want 1", c.Adopted)
	}
}

// TestCASNoAdoptionFromLiveJob pins the safety guard: a checkpoint belonging
// to a job this manager still considers live is not adopted.
func TestCASNoAdoptionFromLiveJob(t *testing.T) {
	store, err := NewCASStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	m := newTestManager(t, Config{Workers: 1, Store: store})
	m.SetRunner("dse", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		rc.SaveCheckpoint(json.RawMessage(`{"cursor":1}`))
		select {
		case <-gate:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	m.Start()
	req := json.RawMessage(`{"sweep":"live"}`)
	first, err := m.Submit("dse", req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	// The first job has checkpointed; wait for it to land in the store.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, ok := store.AdoptCheckpoint("dse", req); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live job's checkpoint never reached the store")
		}
		time.Sleep(2 * time.Millisecond)
	}
	second, err := m.Submit("dse", req)
	if err != nil {
		t.Fatal(err)
	}
	if second.HasCheckpoint {
		t.Fatal("second submission adopted a live job's checkpoint")
	}
	if c := m.Counts(); c.Adopted != 0 {
		t.Fatalf("Counts.Adopted = %d, want 0", c.Adopted)
	}
}
