package job

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// collect drains the stream until it closes or times out.
func collect(t *testing.T, ch <-chan Event) []Event {
	t.Helper()
	var out []Event
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("event stream never closed; got %d events", len(out))
		}
	}
}

func TestWatchFullLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("work", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		rc.ReportProgress(Progress{Streamed: 10})
		if err := rc.SaveCheckpoint(json.RawMessage(`{"cursor":1}`)); err != nil {
			return nil, err
		}
		return json.RawMessage(`{"ok":true}`), nil
	})
	st, err := m.Submit("work", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	m.Start()
	events := collect(t, ch)
	if len(events) < 4 {
		t.Fatalf("got %d events, want >= 4 (snapshot, running, progress/checkpoint, done): %+v", len(events), events)
	}
	if events[0].Type != EventState || events[0].Status.State != StateQueued {
		t.Fatalf("first event = %+v, want queued snapshot", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventDone || last.Status.State != StateSucceeded || !last.Status.HasResult {
		t.Fatalf("last event = %+v, want done/succeeded", last)
	}
	var sawCheckpoint, sawProgress bool
	prevSeq := int64(0)
	for i, ev := range events {
		if ev.Seq <= prevSeq {
			t.Fatalf("event %d seq %d not increasing after %d", i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		switch ev.Type {
		case EventCheckpoint:
			sawCheckpoint = true
		case EventProgress:
			if ev.Status.Progress.Streamed != 10 {
				t.Fatalf("progress event carried %+v", ev.Status.Progress)
			}
			sawProgress = true
		}
	}
	if !sawCheckpoint || !sawProgress {
		t.Fatalf("missing event types (checkpoint %v, progress %v): %+v", sawCheckpoint, sawProgress, events)
	}
}

// TestWatchTerminalJob pins the snapshot-only stream: watching a finished
// job yields exactly one done event and an immediately closed channel.
func TestWatchTerminalJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("noop", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	st, err := m.Submit("noop", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateSucceeded)
	ch, cancel, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	events := collect(t, ch)
	if len(events) != 1 || events[0].Type != EventDone || events[0].Status.State != StateSucceeded {
		t.Fatalf("terminal watch = %+v, want single done event", events)
	}
}

func TestWatchUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, _, err := m.Watch("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Watch(nope) err = %v, want ErrNotFound", err)
	}
}

// TestWatchCancelReleases pins that a canceled subscription stops receiving
// and does not wedge the publisher.
func TestWatchCancelReleases(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("block", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		for i := 0; i < watcherBuffer*4; i++ {
			rc.ReportProgress(Progress{Streamed: int64(i)})
		}
		select {
		case <-gate:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	st, err := m.Submit("block", nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	waitState(t, m, st.ID, StateRunning)
	cancel()
	cancel() // idempotent
	// The channel must be closed (possibly after buffered events drain).
	for range ch {
	}
}

// TestWatchSlowConsumerDropsOldest pins the overflow policy: a consumer that
// never reads still observes the terminal event once it drains, because
// overflow evicts the oldest buffered event, never the newest.
func TestWatchSlowConsumerDropsOldest(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("chatty", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		for i := 0; i < watcherBuffer*4; i++ {
			rc.ReportProgress(Progress{Streamed: int64(i)})
		}
		return json.RawMessage(`{}`), nil
	})
	st, err := m.Submit("chatty", nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	m.Start()
	waitState(t, m, st.ID, StateSucceeded)
	events := collect(t, ch)
	if len(events) > watcherBuffer {
		t.Fatalf("buffer did not bound the stream: %d events", len(events))
	}
	last := events[len(events)-1]
	if last.Type != EventDone || last.Status.State != StateSucceeded {
		t.Fatalf("slow consumer lost the terminal event; last = %+v", last)
	}
}
