package job

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// CASStore is a content-addressed job store: records are filed under
// sha256(kind ‖ request), so the same work submitted under any job ID lands
// in the same slot. That makes orphaned progress discoverable — a manager
// submitting a request the store already holds a checkpoint for adopts it
// (CheckpointAdopter) and resumes instead of recomputing, even if the
// checkpoint was written by another daemon sharing the directory.
//
// One slot holds one record: re-submitting identical work while an earlier
// record exists overwrites it (last writer wins), which is the intended
// dedup semantics of content addressing.
type CASStore struct {
	dir string

	mu   sync.Mutex
	byID map[string]string // job ID -> content hash, for Delete
}

// NewCASStore creates the directory if needed and indexes existing records.
func NewCASStore(dir string) (*CASStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: create cas dir: %w", err)
	}
	s := &CASStore{dir: dir, byID: make(map[string]string)}
	if _, err := s.Load(); err != nil {
		return nil, err
	}
	return s, nil
}

// contentHash addresses a record by its work, not its identity.
func contentHash(kind string, request json.RawMessage) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(request)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *CASStore) path(hash string) string {
	return filepath.Join(s.dir, "cas-"+hash+".json")
}

// Put writes the record into its content slot atomically.
func (s *CASStore) Put(rec Record) error {
	hash := contentHash(rec.Kind, rec.Request)
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	path := s.path(hash)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("job: persist %s: %w", rec.ID, err)
	}
	s.mu.Lock()
	s.byID[rec.ID] = hash
	s.mu.Unlock()
	return nil
}

// Load reads every record, rebuilding the ID index. Corrupt files are
// skipped.
func (s *CASStore) Load() ([]Record, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("job: read cas dir: %w", err)
	}
	var out []Record
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "cas-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" {
			continue
		}
		s.byID[rec.ID] = strings.TrimSuffix(strings.TrimPrefix(name, "cas-"), ".json")
		out = append(out, rec)
	}
	return out, nil
}

// Delete removes the record filed under the ID's content slot — unless a
// later record (different ID, same content) has taken the slot over, in
// which case only the index entry is dropped.
func (s *CASStore) Delete(id string) error {
	s.mu.Lock()
	hash, ok := s.byID[id]
	delete(s.byID, id)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	path := s.path(hash)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err == nil && rec.ID != id {
		return nil // slot adopted by another job; leave it
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// AdoptCheckpoint returns the stored job ID and checkpoint for a record with
// exactly this work, when one exists. The manager decides whether adoption
// is safe (it skips records belonging to its own live jobs).
func (s *CASStore) AdoptCheckpoint(kind string, request json.RawMessage) (string, json.RawMessage, bool) {
	b, err := os.ReadFile(s.path(contentHash(kind, request)))
	if err != nil {
		return "", nil, false
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" || len(rec.Checkpoint) == 0 {
		return "", nil, false
	}
	return rec.ID, rec.Checkpoint, true
}
