// Package job runs asynchronous explorations: a bounded queue with admission
// control, a weighted fair-share scheduler dequeuing tenants in proportion to
// their weights, a worker pool executing registered runners under per-job
// contexts, live progress and event streaming, and crash-safe persistence
// behind a pluggable checkpoint store — so a restarted manager (or, with the
// content-addressed store, any worker sharing the store) re-enqueues
// interrupted work and runners resume from their last checkpoint.
//
// The package is deliberately generic: it never imports the DSE engine.
// Runners are registered per job kind and receive a RunContext carrying the
// request payload, the last checkpoint, and the checkpoint/progress sinks;
// what those bytes mean is the caller's business. Tenancy is likewise
// declarative: submissions carry the tenant's name, weight, and quota limits,
// and the manager enforces them without knowing where they came from.
package job

import (
	"context"
	"encoding/json"
	"time"

	"cordoba/api"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// numPriorities is the number of scheduling classes; the index doubles as
// the dequeue order within a tenant.
const numPriorities = 3

// priorityIndex maps a class to its queue index: interactive before batch
// before deferrable. The empty priority is batch.
func priorityIndex(p api.Priority) int {
	switch p {
	case api.PriorityInteractive:
		return 0
	case api.PriorityDeferrable:
		return 2
	default:
		return 1
	}
}

// Progress is a live snapshot of a running job, written by its runner.
type Progress struct {
	// GridPoints is the total work size (configurations), when known.
	GridPoints int64 `json:"grid_points,omitempty"`
	// Streamed, Pruned and Kept mirror the streaming engine's counters.
	Streamed int64 `json:"streamed"`
	Pruned   int64 `json:"pruned"`
	Kept     int   `json:"kept"`
	// ShapesDone / ShapesTotal is the engine's coarse work cursor.
	ShapesDone  int `json:"shapes_done"`
	ShapesTotal int `json:"shapes_total"`
	// ShardsDone / ShardsTotal track a distributed job's shard fan-out;
	// zero for single-node jobs.
	ShardsDone  int `json:"shards_done,omitempty"`
	ShardsTotal int `json:"shards_total,omitempty"`
	// Generation / EvalsUsed / EvalsBudget track a surrogate search's
	// budget cursor; zero for exhaustive jobs.
	Generation  int   `json:"generation,omitempty"`
	EvalsUsed   int64 `json:"evals_used,omitempty"`
	EvalsBudget int64 `json:"evals_budget,omitempty"`
}

// Status is a point-in-time copy of a job's public state.
type Status struct {
	ID       string       `json:"id"`
	Kind     string       `json:"kind"`
	State    State        `json:"state"`
	Tenant   string       `json:"tenant,omitempty"`
	Priority api.Priority `json:"priority,omitempty"`
	Error    string       `json:"error,omitempty"`
	Progress Progress     `json:"progress"`
	Created  time.Time    `json:"created"`
	Started  time.Time    `json:"started"`
	Finished time.Time    `json:"finished"`
	// NotBefore, on deferrable jobs, is the scheduler's hold-until time
	// (a pointer so non-deferred jobs omit it entirely); CO2AvoidedG is the
	// operational carbon the deferral avoids (grams).
	NotBefore   *time.Time `json:"not_before,omitempty"`
	CO2AvoidedG float64    `json:"co2_avoided_g,omitempty"`
	// Points is the job's grid-point weight against the tenant's
	// grid-points-in-flight quota.
	Points int64 `json:"points,omitempty"`
	// Resumes counts how many times the job restarted from a checkpoint.
	Resumes       int  `json:"resumes"`
	HasResult     bool `json:"has_result"`
	HasCheckpoint bool `json:"has_checkpoint"`
}

// Runner executes one job kind. It receives the job's context — canceled on
// DELETE, manager shutdown, or process exit — and the RunContext carrying
// request, checkpoint and sinks. The returned bytes become the job's result.
// Returning the context's error after an interruption marks the job for
// requeue (shutdown) or cancellation (DELETE); any other error fails it.
type Runner func(ctx context.Context, rc RunContext) (json.RawMessage, error)

// RunContext is the runner's view of its job. It is an interface so tests
// can wrap a manager's implementation to, e.g., block inside SaveCheckpoint
// and interrupt a job at an exact point.
type RunContext interface {
	// JobID returns the job's identifier.
	JobID() string
	// Request returns the submitted request payload.
	Request() json.RawMessage
	// Checkpoint returns the last saved checkpoint, nil on a fresh start.
	Checkpoint() json.RawMessage
	// SaveCheckpoint durably records a checkpoint; on restart the runner
	// sees it via Checkpoint. An error aborts the job.
	SaveCheckpoint(cp json.RawMessage) error
	// ReportProgress publishes a progress snapshot to status readers.
	ReportProgress(p Progress)
}

// job is the manager's internal record.
type job struct {
	id   string
	kind string

	tenant      string // "" = anonymous
	priority    api.Priority
	notBefore   time.Time // deferrable hold-until; zero = eligible now
	co2AvoidedG float64
	points      int64

	state      State
	request    json.RawMessage
	result     json.RawMessage
	checkpoint json.RawMessage
	errMsg     string

	created  time.Time
	started  time.Time
	finished time.Time

	progress Progress
	resumes  int

	cancel          context.CancelFunc // non-nil while running
	cancelRequested bool

	// Event-stream state: a per-job monotonic sequence number and the live
	// subscribers (see events.go).
	seq      int64
	watchers []*watcher
}

func (j *job) status() Status {
	var notBefore *time.Time
	if !j.notBefore.IsZero() {
		nb := j.notBefore
		notBefore = &nb
	}
	return Status{
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Tenant:        j.tenant,
		Priority:      j.priority,
		Error:         j.errMsg,
		Progress:      j.progress,
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		NotBefore:     notBefore,
		CO2AvoidedG:   j.co2AvoidedG,
		Points:        j.points,
		Resumes:       j.resumes,
		HasResult:     len(j.result) > 0,
		HasCheckpoint: len(j.checkpoint) > 0,
	}
}
