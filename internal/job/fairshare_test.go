package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cordoba/api"
)

// orderRecorder is a runner that appends each job's tenant to a shared
// slice, exposing the scheduler's dequeue order.
type orderRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *orderRecorder) runner(tag func(rc RunContext) string) Runner {
	return func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		r.mu.Lock()
		r.order = append(r.order, tag(rc))
		r.mu.Unlock()
		return json.RawMessage(`{}`), nil
	}
}

func (r *orderRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// TestFairShareNoStarvation is the starvation property test: one heavy
// tenant floods the queue, yet every light tenant's first job dequeues
// within a bounded prefix and all jobs eventually finish. All jobs are
// queued before workers start, and a single worker serializes dequeues so
// the recorded order is exactly the scheduler's order.
func TestFairShareNoStarvation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 256})
	rec := &orderRecorder{}
	m.SetRunner("tag", rec.runner(func(rc RunContext) string {
		var req struct {
			Tenant string `json:"tenant"`
		}
		json.Unmarshal(rc.Request(), &req)
		return req.Tenant
	}))

	submit := func(tenant string, weight float64, n int) []string {
		t.Helper()
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			st, err := m.SubmitJob(Submission{
				Kind:    "tag",
				Request: json.RawMessage(fmt.Sprintf(`{"tenant":%q,"i":%d}`, tenant, i)),
				Tenant:  tenant,
				Limits:  Limits{Weight: weight},
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		return ids
	}

	heavy := submit("heavy", 8, 64)
	lightA := submit("light-a", 1, 4)
	lightB := submit("light-b", 1, 4)

	m.Start()
	for _, ids := range [][]string{heavy, lightA, lightB} {
		for _, id := range ids {
			waitState(t, m, id, StateSucceeded)
		}
	}

	order := rec.snapshot()
	if len(order) != 72 {
		t.Fatalf("dequeued %d jobs, want 72", len(order))
	}
	// With weights 8:1:1 the heavy tenant's pass advances 8x slower, so a
	// light tenant must appear at least once in any window of ~10 dequeues.
	// Allow slack, but a light tenant pushed past 2x its stride is
	// starvation.
	firstSeen := map[string]int{}
	for i, tenant := range order {
		if _, ok := firstSeen[tenant]; !ok {
			firstSeen[tenant] = i
		}
	}
	for _, light := range []string{"light-a", "light-b"} {
		at, ok := firstSeen[light]
		if !ok {
			t.Fatalf("tenant %s never dequeued: %v", light, order[:20])
		}
		if at > 20 {
			t.Errorf("tenant %s first dequeued at position %d, want <= 20 (starved)", light, at)
		}
	}
	// And the heavy tenant must dominate the early window in proportion to
	// its weight: at least half of the first 20 dequeues.
	heavyEarly := 0
	for _, tenant := range order[:20] {
		if tenant == "heavy" {
			heavyEarly++
		}
	}
	if heavyEarly < 10 {
		t.Errorf("heavy tenant got %d of the first 20 dequeues, want >= 10: %v", heavyEarly, order[:20])
	}
}

// TestPriorityWithinTenant pins the intra-tenant class order: interactive
// before batch, regardless of submission order.
func TestPriorityWithinTenant(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 16})
	rec := &orderRecorder{}
	m.SetRunner("tag", rec.runner(func(rc RunContext) string {
		var req struct {
			Tag string `json:"tag"`
		}
		json.Unmarshal(rc.Request(), &req)
		return req.Tag
	}))
	var ids []string
	for i, pri := range []api.Priority{api.PriorityBatch, api.PriorityBatch, api.PriorityInteractive} {
		st, err := m.SubmitJob(Submission{
			Kind:     "tag",
			Request:  json.RawMessage(fmt.Sprintf(`{"tag":"%s-%d"}`, pri, i)),
			Priority: pri,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Priority != pri {
			t.Fatalf("status priority = %q, want %q", st.Priority, pri)
		}
		ids = append(ids, st.ID)
	}
	m.Start()
	for _, id := range ids {
		waitState(t, m, id, StateSucceeded)
	}
	order := rec.snapshot()
	want := []string{"interactive-2", "batch-0", "batch-1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestDeferrableHeldUntilWindow pins the launch-window hold: a deferrable
// job with a future not-before stays queued on an idle worker pool until
// the window opens, then runs; its carbon accounting lands in Counts.
func TestDeferrableHeldUntilWindow(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, QueueDepth: 8})
	m.SetRunner("noop", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	notBefore := time.Now().UTC().Add(250 * time.Millisecond)
	st, err := m.SubmitJob(Submission{
		Kind:        "noop",
		Request:     json.RawMessage(`{}`),
		Priority:    api.PriorityDeferrable,
		NotBefore:   notBefore,
		CO2AvoidedG: 12.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NotBefore == nil || !st.NotBefore.Equal(notBefore) || st.CO2AvoidedG != 12.5 {
		t.Fatalf("deferral not recorded in status: %+v", st)
	}
	time.Sleep(100 * time.Millisecond)
	mid, _ := m.Get(st.ID)
	if mid.State != StateQueued {
		t.Fatalf("job left queue before its window: state %q", mid.State)
	}
	fin := waitState(t, m, st.ID, StateSucceeded)
	if fin.Started.Before(notBefore) {
		t.Fatalf("job started %v, before its window %v", fin.Started, notBefore)
	}
	c := m.Counts()
	if c.Deferred != 1 || c.CO2AvoidedG != 12.5 {
		t.Fatalf("counts = %+v, want Deferred 1, CO2AvoidedG 12.5", c)
	}
}

// TestNonDeferrableIgnoresWindow pins that only the deferrable class is
// held: a batch job with a (bogus) not-before runs immediately.
func TestNonDeferrableIgnoresWindow(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("noop", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	st, err := m.SubmitJob(Submission{
		Kind:      "noop",
		Request:   json.RawMessage(`{}`),
		NotBefore: time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NotBefore != nil {
		t.Fatalf("batch job kept a not-before: %+v", st)
	}
	waitState(t, m, st.ID, StateSucceeded)
}

// TestTenantQuotas pins both per-tenant caps and their error shape.
func TestTenantQuotas(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 16})
	m.SetRunner("block", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	// No Start: everything stays queued, making usage deterministic.
	lim := Limits{MaxQueued: 2, MaxPoints: 100}
	if _, err := m.SubmitJob(Submission{Kind: "block", Tenant: "acme", Limits: lim, Points: 60}); err != nil {
		t.Fatal(err)
	}
	// Points quota: 60 + 60 > 100.
	_, err := m.SubmitJob(Submission{Kind: "block", Tenant: "acme", Limits: lim, Points: 60})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "grid_points" {
		t.Fatalf("points overflow err = %v, want QuotaError{grid_points}", err)
	}
	if qe.Tenant != "acme" || qe.Used != 60 || qe.Want != 120 || qe.Max != 100 {
		t.Fatalf("quota error fields: %+v", qe)
	}
	// A small job still fits.
	if _, err := m.SubmitJob(Submission{Kind: "block", Tenant: "acme", Limits: lim, Points: 10}); err != nil {
		t.Fatal(err)
	}
	// Queue quota: 2 queued is the cap.
	_, err = m.SubmitJob(Submission{Kind: "block", Tenant: "acme", Limits: lim})
	if !errors.As(err, &qe) || qe.Resource != "queued_jobs" {
		t.Fatalf("queue overflow err = %v, want QuotaError{queued_jobs}", err)
	}
	// Another tenant is unaffected.
	if _, err := m.SubmitJob(Submission{Kind: "block", Tenant: "zeta", Limits: lim}); err != nil {
		t.Fatal(err)
	}
	c := m.Counts()
	if c.QuotaRejected != 2 || c.Rejected != 0 {
		t.Fatalf("counts = %+v, want QuotaRejected 2", c)
	}
	tc := m.TenantCounts()
	if tc["acme"].Queued != 2 || tc["acme"].Points != 70 {
		t.Fatalf("acme counts = %+v, want 2 queued / 70 points", tc["acme"])
	}
	// Canceling a queued job releases its quota.
	sts := m.List()
	var acmeID string
	for _, st := range sts {
		if st.Tenant == "acme" && st.Points == 60 {
			acmeID = st.ID
		}
	}
	if _, err := m.Cancel(acmeID); err != nil {
		t.Fatal(err)
	}
	if tc := m.TenantCounts(); tc["acme"].Queued != 1 || tc["acme"].Points != 10 {
		t.Fatalf("post-cancel acme counts = %+v, want 1 queued / 10 points", tc["acme"])
	}
}

// TestAnonymousCompatSubmit pins that the one-argument Submit keeps the
// single-tenant wire shape: no tenant name, batch priority implied.
func TestAnonymousCompatSubmit(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.SetRunner("noop", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	m.Start()
	st, err := m.Submit("noop", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "" {
		t.Fatalf("anonymous submit recorded tenant %q", st.Tenant)
	}
	fin := waitState(t, m, st.ID, StateSucceeded)
	b, _ := json.Marshal(fin)
	for _, banned := range []string{`"tenant"`, `"not_before"`, `"co2_avoided_g"`, `"points"`} {
		if strings.Contains(string(b), banned) {
			t.Fatalf("anonymous status leaked %s: %s", banned, b)
		}
	}
}

// BenchmarkFairShareDequeue measures one scheduler pick + requeue cycle over
// a populated multi-tenant queue — the hot path between every job. Gated by
// `make bench-queue` against testdata/bench_baseline.json.
func BenchmarkFairShareDequeue(b *testing.B) {
	m, err := NewManager(Config{Workers: 1, QueueDepth: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	m.SetRunner("noop", func(ctx context.Context, rc RunContext) (json.RawMessage, error) {
		return nil, nil
	})
	const tenants, perTenant = 32, 8
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("t%02d", ti)
		for i := 0; i < perTenant; i++ {
			if _, err := m.SubmitJob(Submission{
				Kind: "noop", Tenant: name,
				Limits: Limits{Weight: float64(1 + ti%4)},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.mu.Lock()
		j := m.nextLocked(now)
		if j == nil {
			m.mu.Unlock()
			b.Fatal("scheduler returned no job over a populated queue")
		}
		// Undo the pick so the population is constant across iterations.
		ts := m.tenants[j.tenant]
		ts.running--
		m.enqueueLocked(ts, j)
		m.mu.Unlock()
	}
}
