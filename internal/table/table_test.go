package table

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-very-long", "22.5")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if lines[3][idx:idx+1] != "1" {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1.25, "1.25"},
		{1.5, "1.5"},
		{12273, "12273"},
		{1e6, "1e+06"},
		{0.0001, "0.0001"},
		{3.0, "3"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "tCDP vs inferences",
		XLabel: "inferences",
		YLabel: "tCDP",
		LogX:   true,
		Series: []Series{
			{Name: "a1", X: []float64{1e3, 1e6, 1e9}, Y: []float64{1, 2, 30}},
			{Name: "a48", X: []float64{1e3, 1e6, 1e9}, Y: []float64{5, 6, 7}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "tCDP vs inferences") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "legend: *=a1 o=a48") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "log scale") {
		t.Error("missing log-scale note")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing plotted markers")
	}
}

func TestChartErrors(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Error("length mismatch should error")
	}
	empty := &Chart{Title: "e", Series: []Series{{Name: "n"}}}
	if err := empty.Render(&strings.Builder{}); err == nil {
		t.Error("no points should error")
	}
	if !strings.Contains(empty.String(), "chart error") {
		t.Error("String should surface the error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// A single point must still render (ranges padded).
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{5}}}}
	if err := c.Render(&strings.Builder{}); err != nil {
		t.Fatalf("single point: %v", err)
	}
}

func TestBarChart(t *testing.T) {
	bc := &BarChart{
		Title: "tCDP gain",
		Unit:  "×",
		Bars: []Bar{
			{Label: "M-1", Value: 1.25, Note: "optimal"},
			{Label: "All", Value: 1.08},
		},
	}
	out := bc.String()
	if !strings.Contains(out, "M-1") || !strings.Contains(out, "1.25 ×") || !strings.Contains(out, "(optimal)") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Errorf("bars not scaled:\n%s", out)
	}
}

func TestBarChartErrors(t *testing.T) {
	if err := (&BarChart{Title: "x"}).Render(&strings.Builder{}); err == nil {
		t.Error("empty bar chart should error")
	}
	neg := &BarChart{Bars: []Bar{{Label: "n", Value: -1}}}
	if err := neg.Render(&strings.Builder{}); err == nil {
		t.Error("negative bar should error")
	}
	if !strings.Contains(neg.String(), "bar chart error") {
		t.Error("String should surface the error")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	bc := &BarChart{Bars: []Bar{{Label: "z", Value: 0}}}
	if err := bc.Render(&strings.Builder{}); err != nil {
		t.Fatalf("all-zero bars should render: %v", err)
	}
}
