// Package table renders experiment results as aligned text tables and ASCII
// charts — the repository's stand-in for the paper's figures, since the
// reproduction is stdlib-only.
package table

import (
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are kept and
// widen the table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// width returns the number of columns including over-wide rows.
func (t *Table) width() int {
	w := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := t.width()
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	formatRow := func(row []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	formatRow(t.Columns)
	total := 2 * (cols - 1)
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		formatRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("table error: %v", err)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsNaN(v):
		return "NaN"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// Series is one line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
}

var markers = []byte("*o+x#@%&")

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 { return v }
	if c.LogX {
		tx = math.Log10
	}
	if c.LogY {
		ty = math.Log10
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	count := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("table: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			count++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if count == 0 {
		return fmt.Errorf("table: chart %q has no plottable points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
			cells[row][col] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "y: %s%s\n", c.YLabel, logNote(c.LogY))
	}
	for _, row := range cells {
		b.WriteString("| ")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "x: %s%s  [%s .. %s]\n", c.XLabel, logNote(c.LogX), F(untx(minX, c.LogX)), F(untx(maxX, c.LogX)))
	if len(c.Series) > 1 || c.Series[0].Name != "" {
		b.WriteString("legend:")
		for si, s := range c.Series {
			fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func logNote(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return fmt.Sprintf("chart error: %v", err)
	}
	return b.String()
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
	Note  string
}

// BarChart renders labelled horizontal bars scaled to the largest value.
type BarChart struct {
	Title string
	Unit  string
	Bars  []Bar
	Width int // bar columns (default 50)
}

// Render writes the bar chart to w.
func (bc *BarChart) Render(w io.Writer) error {
	if len(bc.Bars) == 0 {
		return fmt.Errorf("table: bar chart %q has no bars", bc.Title)
	}
	width := bc.Width
	if width <= 0 {
		width = 50
	}
	maxV, maxLabel := 0.0, 0
	for _, b := range bc.Bars {
		if b.Value < 0 {
			return fmt.Errorf("table: bar %q has negative value", b.Label)
		}
		maxV = math.Max(maxV, b.Value)
		if n := utf8.RuneCountInString(b.Label); n > maxLabel {
			maxLabel = n
		}
	}
	var sb strings.Builder
	if bc.Title != "" {
		fmt.Fprintf(&sb, "%s\n", bc.Title)
	}
	for _, b := range bc.Bars {
		n := 0
		if maxV > 0 {
			n = int(math.Round(b.Value / maxV * float64(width)))
		}
		fmt.Fprintf(&sb, "%-*s |%s %s %s", maxLabel, b.Label, strings.Repeat("█", n), F(b.Value), bc.Unit)
		if b.Note != "" {
			fmt.Fprintf(&sb, "  (%s)", b.Note)
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the bar chart to a string.
func (bc *BarChart) String() string {
	var b strings.Builder
	if err := bc.Render(&b); err != nil {
		return fmt.Sprintf("bar chart error: %v", err)
	}
	return b.String()
}
