// Package opt implements CORDOBA's constrained design optimization,
// eq. IV.1:
//
//	minimize   (C_operational(x) + C_embodied(x)) · D(x)
//	subject to Area_i(x) ≤ a_i,  QoS_j(x) ≥ q_j,  Power_l(x) ≤ p_l
//
// The objective is pluggable (§III-C: the target metric must be derived from
// the application scenario — sometimes tCDP, sometimes energy under a
// latency constraint, sometimes raw energy). Design spaces are finite
// candidate sets, matching the paper's grid-enumeration DSE.
package opt

import (
	"fmt"
	"math"

	"cordoba/internal/metrics"
	"cordoba/internal/units"
)

// Candidate is one design point with everything the constraints and
// objectives can interrogate.
type Candidate struct {
	Name   string
	Report metrics.Report
	Area   units.Area
	Power  units.Power
	// QoS is the scenario's quality-of-service figure (higher is better),
	// e.g. frames or inferences per second.
	QoS float64
}

// Constraint is one row of eq. IV.1's subject-to block.
type Constraint interface {
	// Check returns nil when the candidate satisfies the constraint, and a
	// descriptive error otherwise.
	Check(c Candidate) error
	// String names the constraint for reporting.
	String() string
}

// AreaLimit enforces Area(x) ≤ Max.
type AreaLimit struct{ Max units.Area }

// Check implements Constraint.
func (a AreaLimit) Check(c Candidate) error {
	if c.Area > a.Max {
		return fmt.Errorf("area %v exceeds limit %v", c.Area, a.Max)
	}
	return nil
}

// String implements Constraint.
func (a AreaLimit) String() string { return fmt.Sprintf("area ≤ %v", a.Max) }

// PowerLimit enforces Power(x) ≤ Max.
type PowerLimit struct{ Max units.Power }

// Check implements Constraint.
func (p PowerLimit) Check(c Candidate) error {
	if c.Power > p.Max {
		return fmt.Errorf("power %v exceeds limit %v", c.Power, p.Max)
	}
	return nil
}

// String implements Constraint.
func (p PowerLimit) String() string { return fmt.Sprintf("power ≤ %v", p.Max) }

// QoSFloor enforces QoS(x) ≥ Min.
type QoSFloor struct{ Min float64 }

// Check implements Constraint.
func (q QoSFloor) Check(c Candidate) error {
	if c.QoS < q.Min {
		return fmt.Errorf("QoS %.4g below floor %.4g", c.QoS, q.Min)
	}
	return nil
}

// String implements Constraint.
func (q QoSFloor) String() string { return fmt.Sprintf("QoS ≥ %.4g", q.Min) }

// DelayCap enforces D(x) ≤ Max — the "maximum latency constraint" scenario
// of §III-C(a).
type DelayCap struct{ Max units.Time }

// Check implements Constraint.
func (d DelayCap) Check(c Candidate) error {
	if c.Report.Delay > d.Max {
		return fmt.Errorf("delay %v exceeds cap %v", c.Report.Delay, d.Max)
	}
	return nil
}

// String implements Constraint.
func (d DelayCap) String() string { return fmt.Sprintf("delay ≤ %v", d.Max) }

// Problem is one instance of eq. IV.1.
type Problem struct {
	Objective   metrics.Objective
	Constraints []Constraint
}

// Solution reports the outcome of Solve.
type Solution struct {
	Best     int   // index of the optimal feasible candidate
	Feasible []int // all feasible candidate indices
	// Infeasible maps candidate index → the first violated constraint's
	// explanation, for every rejected candidate.
	Infeasible map[int]string
	// Score is the objective value of the best candidate.
	Score float64
}

// Solve evaluates all candidates, filters by the constraints, and minimizes
// the objective over the feasible set. It returns an error when the feasible
// set is empty.
func (p Problem) Solve(candidates []Candidate) (Solution, error) {
	if len(candidates) == 0 {
		return Solution{}, fmt.Errorf("opt: empty candidate set")
	}
	sol := Solution{Best: -1, Infeasible: map[int]string{}, Score: math.Inf(1)}
	for i, c := range candidates {
		violated := ""
		for _, con := range p.Constraints {
			if err := con.Check(c); err != nil {
				violated = fmt.Sprintf("%s: %v", con, err)
				break
			}
		}
		if violated != "" {
			sol.Infeasible[i] = violated
			continue
		}
		sol.Feasible = append(sol.Feasible, i)
		if s := p.Objective.Score(c.Report); s < sol.Score {
			sol.Best, sol.Score = i, s
		}
	}
	if sol.Best < 0 {
		return sol, fmt.Errorf("opt: no candidate satisfies all %d constraints", len(p.Constraints))
	}
	return sol, nil
}

// MinimizeTCDP is the default CORDOBA problem: eq. IV.1 verbatim.
func MinimizeTCDP(constraints ...Constraint) Problem {
	return Problem{Objective: metrics.MinTCDP, Constraints: constraints}
}

// MinimizeEnergyUnderLatency is §III-C scenario (a): minimize energy given a
// performance constraint, knowingly degrading EDP/tCDP.
func MinimizeEnergyUnderLatency(maxDelay units.Time) Problem {
	return Problem{Objective: metrics.MinEnergy, Constraints: []Constraint{DelayCap{Max: maxDelay}}}
}

// MinimizeEnergy is §III-C scenario (b): the performance-agnostic wearable —
// minimize energy regardless of execution time.
func MinimizeEnergy() Problem {
	return Problem{Objective: metrics.MinEnergy}
}
