package opt

import (
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/dse"
	"cordoba/internal/metrics"
	"cordoba/internal/workload"
)

func exploreXR5(t *testing.T) *dse.Space {
	t.Helper()
	task, err := workload.PaperTask(workload.TaskXR5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dse.EvaluateDefault(task, accel.Grid())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromSpaceMirrorsPoints(t *testing.T) {
	s := exploreXR5(t)
	cands := FromSpace(s, 1e8)
	if len(cands) != len(s.Points) {
		t.Fatalf("candidate count = %d", len(cands))
	}
	for i, c := range cands {
		p := s.Points[i]
		if c.Name != p.Config.ID || c.Area != p.Area {
			t.Fatalf("candidate %d does not mirror point", i)
		}
		if c.QoS <= 0 || c.Power <= 0 {
			t.Fatalf("candidate %d: degenerate QoS/power", i)
		}
	}
}

// eq. IV.1 end-to-end: the unconstrained tCDP solution matches the DSE
// optimum; adding constraints changes the answer in the expected direction.
func TestConstrainedDSEOnRealSpace(t *testing.T) {
	s := exploreXR5(t)
	const n = 1e8
	cands := FromSpace(s, n)

	sol, err := MinimizeTCDP().Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Points[s.OptimalAt(n)].Config.ID; cands[sol.Best].Name != want {
		t.Errorf("unconstrained optimum %s, DSE says %s", cands[sol.Best].Name, want)
	}

	// A tight area budget forces a smaller design.
	unconstrainedArea := cands[sol.Best].Area
	limited, err := MinimizeTCDP(AreaLimit{Max: unconstrainedArea / 2}).Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[limited.Best].Area > unconstrainedArea/2 {
		t.Error("area constraint violated")
	}
	if limited.Score < sol.Score {
		t.Error("constrained optimum cannot beat the unconstrained one")
	}

	// A QoS floor (throughput) forces a faster design than min-energy
	// would pick.
	minE, err := MinimizeEnergy().Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	maxQoS := 0.0
	for _, c := range cands {
		if c.QoS > maxQoS {
			maxQoS = c.QoS
		}
	}
	floor := (cands[minE.Best].QoS + maxQoS) / 2 // feasible, above the min-energy pick
	qosProblem := Problem{Objective: metrics.MinEnergy, Constraints: []Constraint{QoSFloor{Min: floor}}}
	qosSol, err := qosProblem.Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[qosSol.Best].QoS < floor {
		t.Error("QoS floor violated")
	}
	if cands[qosSol.Best].Report.Energy < cands[minE.Best].Report.Energy {
		t.Error("QoS-constrained energy optimum cannot beat the unconstrained one")
	}

	// An impossible power limit is infeasible.
	if _, err := MinimizeTCDP(PowerLimit{Max: 1e-9}).Solve(cands); err == nil {
		t.Error("impossible power limit should be infeasible")
	}
}
