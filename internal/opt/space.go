package opt

import (
	"cordoba/internal/dse"
	"cordoba/internal/units"
)

// FromSpace converts an evaluated design space into eq. IV.1 candidates for
// an operational time of n task executions. QoS is reported as task
// throughput (executions per second); power is the design's average draw
// E/D while active.
func FromSpace(s *dse.Space, n float64) []Candidate {
	out := make([]Candidate, len(s.Points))
	for i, p := range s.Points {
		var power units.Power
		var qos float64
		if p.Delay > 0 {
			power = p.Energy.DividedBy(p.Delay)
			qos = 1 / p.Delay.Seconds()
		}
		out[i] = Candidate{
			Name:   p.Config.ID,
			Report: p.Report(s.CIUse, n),
			Area:   p.Area,
			Power:  power,
			QoS:    qos,
		}
	}
	return out
}
