package opt

import (
	"strings"
	"testing"

	"cordoba/internal/metrics"
	"cordoba/internal/units"
)

// candidatesFromICs builds opt candidates from the paper's six Table I/II
// ICs with a 250 MHz-class QoS figure (task throughput).
func candidatesFromICs() []Candidate {
	s := metrics.PaperCarbonScenario()
	rows := s.Evaluate(metrics.PaperICs())
	out := make([]Candidate, len(rows))
	for i, r := range rows {
		out[i] = Candidate{
			Name:   r.IC.Name,
			Report: r.Report(s),
			Area:   units.MM2(10),
			Power:  r.IC.Power(),
			QoS:    1 / r.TimePerTask.Seconds(),
		}
	}
	return out
}

func TestSolveUnconstrainedTCDP(t *testing.T) {
	sol, err := MinimizeTCDP().Solve(candidatesFromICs())
	if err != nil {
		t.Fatal(err)
	}
	if got := candidatesFromICs()[sol.Best].Name; got != "E" {
		t.Errorf("tCDP-optimal IC = %s, want E (Table II)", got)
	}
	if len(sol.Feasible) != 6 {
		t.Errorf("all 6 should be feasible, got %d", len(sol.Feasible))
	}
}

// §III-C scenario (a): a latency constraint eliminates slow ICs, and the
// energy-optimal feasible design is "C" — not the EDP-optimal "D".
func TestLatencyConstrainedEnergy(t *testing.T) {
	cands := candidatesFromICs()
	// 250 MHz floor ⇔ task time ≤ 100e6/250e6 = 0.4 s.
	sol, err := MinimizeEnergyUnderLatency(units.Time(0.4)).Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if got := cands[sol.Best].Name; got != "C" {
		t.Errorf("optimal = %s, want C (paper: \"IC C is chosen\")", got)
	}
	// A and B must be infeasible (clock below 250 MHz).
	for i, c := range cands {
		_, rejected := sol.Infeasible[i]
		slow := c.Name == "A" || c.Name == "B"
		if slow != rejected {
			t.Errorf("IC %s: rejected=%v, want %v", c.Name, rejected, slow)
		}
	}
}

// §III-C scenario (b): unconstrained energy minimization picks the slowest
// IC "A" — the pitfall the paper warns about.
func TestUnconstrainedEnergyPicksSlowest(t *testing.T) {
	cands := candidatesFromICs()
	sol, err := MinimizeEnergy().Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if got := cands[sol.Best].Name; got != "A" {
		t.Errorf("min-energy = %s, want A", got)
	}
}

func TestConstraintChecks(t *testing.T) {
	c := Candidate{
		Name:   "x",
		Report: metrics.Report{Delay: 2, Energy: 1},
		Area:   units.Area(3),
		Power:  units.Power(5),
		QoS:    30,
	}
	cases := []struct {
		con  Constraint
		pass bool
	}{
		{AreaLimit{Max: 4}, true},
		{AreaLimit{Max: 2}, false},
		{PowerLimit{Max: 6}, true},
		{PowerLimit{Max: 4}, false},
		{QoSFloor{Min: 30}, true},
		{QoSFloor{Min: 31}, false},
		{DelayCap{Max: 2}, true},
		{DelayCap{Max: 1}, false},
	}
	for _, tc := range cases {
		err := tc.con.Check(c)
		if (err == nil) != tc.pass {
			t.Errorf("%s: pass=%v, want %v (err=%v)", tc.con, err == nil, tc.pass, err)
		}
		if tc.con.String() == "" {
			t.Errorf("constraint has empty description")
		}
	}
}

func TestSolveEmptyAndInfeasible(t *testing.T) {
	if _, err := MinimizeTCDP().Solve(nil); err == nil {
		t.Error("empty candidate set should error")
	}
	cands := candidatesFromICs()
	p := MinimizeTCDP(PowerLimit{Max: 0.001})
	sol, err := p.Solve(cands)
	if err == nil {
		t.Error("infeasible problem should error")
	}
	if len(sol.Infeasible) != len(cands) {
		t.Errorf("all candidates should be explained, got %d", len(sol.Infeasible))
	}
	for _, why := range sol.Infeasible {
		if !strings.Contains(why, "power") {
			t.Errorf("explanation should mention power: %q", why)
		}
	}
}

func TestMultipleConstraintsCompose(t *testing.T) {
	cands := candidatesFromICs()
	// Power ≤ 20 W excludes "F" (160 W); delay ≤ 0.3 s excludes A, B;
	// best tCDP among {C, D, E} is E.
	p := MinimizeTCDP(PowerLimit{Max: 20}, DelayCap{Max: units.Time(0.3)})
	sol, err := p.Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[sol.Best].Name != "E" {
		t.Errorf("best = %s, want E", cands[sol.Best].Name)
	}
	if len(sol.Feasible) != 3 {
		t.Errorf("feasible = %d, want 3 (C, D, E)", len(sol.Feasible))
	}
}

// The objective score reported must match the winning candidate's metric.
func TestSolutionScore(t *testing.T) {
	cands := candidatesFromICs()
	sol, err := MinimizeTCDP().Solve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Score != cands[sol.Best].Report.TCDP() {
		t.Errorf("score %v != winner tCDP %v", sol.Score, cands[sol.Best].Report.TCDP())
	}
}
