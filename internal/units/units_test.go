package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"hours", Hours(2).Seconds(), 7200},
		{"days", Days(1).Seconds(), 86400},
		{"years", Years(1).Seconds(), 31536000},
		{"in-hours", Time(7200).InHours(), 2},
		{"in-days", Time(172800).InDays(), 2},
		{"in-years", Years(5).InYears(), 5},
	}
	for _, c := range cases {
		if !almostEqual(c.got, c.want, 1e-12) {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestEnergyKWhRoundTrip(t *testing.T) {
	if got := KWh(1).Joules(); got != 3.6e6 {
		t.Fatalf("KWh(1) = %v J, want 3.6e6", got)
	}
	if got := Energy(9.5).InKWh(); !almostEqual(got, 2.639e-6, 1e-3) {
		// Table II row [C3]: 9.5 J budget = 2.639e-6 kWh.
		t.Fatalf("9.5 J = %v kWh, want 2.639e-6", got)
	}
}

func TestPowerOver(t *testing.T) {
	e := Power(8.3).Over(Hours(1))
	if !almostEqual(e.Joules(), 8.3*3600, 1e-12) {
		t.Fatalf("8.3 W over 1 h = %v", e)
	}
	p := e.DividedBy(Hours(1))
	if !almostEqual(p.Watts(), 8.3, 1e-12) {
		t.Fatalf("round trip power = %v", p)
	}
}

func TestCarbonIntensityOf(t *testing.T) {
	// Table V: 8.3 W for one hour at 380 g/kWh is 3.154 g CO2e per hour.
	e := Power(8.3).Over(Hours(1))
	c := CarbonIntensity(380).Of(e)
	if !almostEqual(c.Grams(), 3.154, 1e-3) {
		t.Fatalf("C_op per hour = %v, want 3.154 g", c)
	}
}

func TestAreaConversions(t *testing.T) {
	if got := MM2(225).CM2(); !almostEqual(got, 2.25, 1e-12) {
		t.Fatalf("225 mm² = %v cm²", got)
	}
	if got := Area(2.25).InMM2(); !almostEqual(got, 225, 1e-12) {
		t.Fatalf("2.25 cm² = %v mm²", got)
	}
}

func TestFrequency(t *testing.T) {
	f := GHz(0.02)
	if !almostEqual(f.Hertz(), 2e7, 1e-12) {
		t.Fatalf("0.02 GHz = %v Hz", f.Hertz())
	}
	if !almostEqual(f.Period().Seconds(), 5e-8, 1e-12) {
		t.Fatalf("period = %v", f.Period())
	}
	if got := MHz(250).InGHz(); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("250 MHz = %v GHz", got)
	}
}

func TestBytes(t *testing.T) {
	if MB(8) != 8*MiB {
		t.Fatalf("MB(8) = %v", MB(8))
	}
	if got := (32 * MiB).InMB(); got != 32 {
		t.Fatalf("32 MiB = %v MB", got)
	}
}

func TestBandwidth(t *testing.T) {
	bw := GBps(16)
	if bw.BytesPerSecond() != 16e9 {
		t.Fatalf("16 GB/s = %v B/s", bw.BytesPerSecond())
	}
	if bw.InGBps() != 16 {
		t.Fatalf("round trip = %v", bw.InGBps())
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Time(0.002).String(), "2 ms"},
		{Time(5400).String(), "1.5 h"},
		{Years(5).String(), "5 y"},
		{Energy(1.9e-9).String(), "1.9 nJ"},
		{Energy(3.6e6).String(), "1 kWh"},
		{Power(0.038).String(), "38 mW"},
		{Power(5000).String(), "5 kW"},
		{Carbon(5375.33).String(), "5.375 kgCO2e"},
		{Carbon(0.001).String(), "1 mgCO2e"},
		{CarbonIntensity(380).String(), "380 gCO2e/kWh"},
		{Area(2.25).String(), "2.25 cm²"},
		{Area(0.05).String(), "5 mm²"},
		{GHz(3.2).String(), "3.2 GHz"},
		{MHz(250).String(), "250 MHz"},
		{(8 * MiB).String(), "8 MiB"},
		{GBps(16).String(), "16 GB/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestZeroStrings(t *testing.T) {
	for _, s := range []string{
		Time(0).String(), Energy(0).String(), Power(0).String(), Carbon(0).String(),
	} {
		if s == "" {
			t.Fatal("zero value produced empty string")
		}
	}
}

// Property: converting any energy to kWh and back is the identity.
func TestEnergyRoundTripProperty(t *testing.T) {
	f := func(j float64) bool {
		if math.IsNaN(j) || math.IsInf(j, 0) {
			return true
		}
		e := Energy(j)
		return almostEqual(KWh(e.InKWh()).Joules(), j, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CarbonIntensity.Of is linear in the energy argument.
func TestCarbonIntensityLinearity(t *testing.T) {
	f := func(ci, e1, e2 float64) bool {
		ci = math.Mod(math.Abs(ci), 1000)
		e1 = math.Mod(math.Abs(e1), 1e9)
		e2 = math.Mod(math.Abs(e2), 1e9)
		if math.IsNaN(ci + e1 + e2) {
			return true
		}
		c := CarbonIntensity(ci)
		sum := c.Of(Energy(e1)) + c.Of(Energy(e2))
		whole := c.Of(Energy(e1 + e2))
		return almostEqual(sum.Grams(), whole.Grams(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Power.Over is monotone in time for positive power.
func TestPowerOverMonotone(t *testing.T) {
	f := func(p, t1, t2 float64) bool {
		p = math.Mod(math.Abs(p), 1e6)
		t1 = math.Mod(math.Abs(t1), 1e9)
		t2 = math.Mod(math.Abs(t2), 1e9)
		if math.IsNaN(p + t1 + t2) {
			return true
		}
		lo, hi := math.Min(t1, t2), math.Max(t1, t2)
		return Power(p).Over(Time(lo)) <= Power(p).Over(Time(hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
