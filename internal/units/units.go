// Package units defines the physical quantities used throughout CORDOBA.
//
// Every quantity is a defined float64 type so that the compiler catches unit
// mix-ups (adding Joules to grams of CO2e) while arithmetic stays allocation
// free. Each type stores its value in one canonical SI-ish unit:
//
//	Time            seconds
//	Energy          joules
//	Power           watts
//	Carbon          grams of CO2-equivalent (g CO2e)
//	CarbonIntensity grams of CO2e per kilowatt-hour (g CO2e/kWh)
//	Area            square centimetres (cm²)
//	Frequency       hertz
//
// Conversions to and from the unit a paper table happens to use (kWh, mm²,
// years, ...) are provided as constructors and accessor methods.
package units

import (
	"fmt"
	"math"
)

// JoulesPerKWh is the number of joules in one kilowatt-hour.
const JoulesPerKWh = 3.6e6

// SecondsPerHour is the number of seconds in one hour.
const SecondsPerHour = 3600

// SecondsPerDay is the number of seconds in one day.
const SecondsPerDay = 86400

// SecondsPerYear is the number of seconds in one (365-day) year, the
// convention used for hardware-lifetime arithmetic in the paper.
const SecondsPerYear = 365 * SecondsPerDay

// Time is a duration or instant measured in seconds. A dedicated type is used
// instead of time.Duration because hardware lifetimes span years and the
// framework needs fractional-second resolution at the same time.
type Time float64

// Hours constructs a Time from a number of hours.
func Hours(h float64) Time { return Time(h * SecondsPerHour) }

// Days constructs a Time from a number of days.
func Days(d float64) Time { return Time(d * SecondsPerDay) }

// Years constructs a Time from a number of 365-day years.
func Years(y float64) Time { return Time(y * SecondsPerYear) }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return float64(t) }

// InHours reports t in hours.
func (t Time) InHours() float64 { return float64(t) / SecondsPerHour }

// InDays reports t in days.
func (t Time) InDays() float64 { return float64(t) / SecondsPerDay }

// InYears reports t in 365-day years.
func (t Time) InYears() float64 { return float64(t) / SecondsPerYear }

// String formats the time with an automatically chosen unit.
func (t Time) String() string {
	s := float64(t)
	switch {
	case math.Abs(s) >= SecondsPerYear:
		return fmt.Sprintf("%.3g y", s/SecondsPerYear)
	case math.Abs(s) >= SecondsPerDay:
		return fmt.Sprintf("%.3g d", s/SecondsPerDay)
	case math.Abs(s) >= SecondsPerHour:
		return fmt.Sprintf("%.3g h", s/SecondsPerHour)
	case math.Abs(s) >= 1:
		return fmt.Sprintf("%.3g s", s)
	case math.Abs(s) >= 1e-3:
		return fmt.Sprintf("%.3g ms", s*1e3)
	case math.Abs(s) >= 1e-6:
		return fmt.Sprintf("%.3g µs", s*1e6)
	case s == 0:
		return "0 s"
	default:
		return fmt.Sprintf("%.3g ns", s*1e9)
	}
}

// Energy is an amount of energy in joules.
type Energy float64

// KWh constructs an Energy from kilowatt-hours.
func KWh(k float64) Energy { return Energy(k * JoulesPerKWh) }

// Joules reports e in joules.
func (e Energy) Joules() float64 { return float64(e) }

// InKWh reports e in kilowatt-hours.
func (e Energy) InKWh() float64 { return float64(e) / JoulesPerKWh }

// String formats the energy with an automatically chosen unit.
func (e Energy) String() string {
	j := float64(e)
	switch {
	case math.Abs(j) >= JoulesPerKWh:
		return fmt.Sprintf("%.4g kWh", j/JoulesPerKWh)
	case math.Abs(j) >= 1:
		return fmt.Sprintf("%.4g J", j)
	case math.Abs(j) >= 1e-3:
		return fmt.Sprintf("%.4g mJ", j*1e3)
	case math.Abs(j) >= 1e-6:
		return fmt.Sprintf("%.4g µJ", j*1e6)
	case math.Abs(j) >= 1e-9:
		return fmt.Sprintf("%.4g nJ", j*1e9)
	case j == 0:
		return "0 J"
	default:
		return fmt.Sprintf("%.4g pJ", j*1e12)
	}
}

// Power is a power draw in watts.
type Power float64

// Watts reports p in watts.
func (p Power) Watts() float64 { return float64(p) }

// Over returns the energy consumed when drawing p for duration t.
func (p Power) Over(t Time) Energy { return Energy(float64(p) * float64(t)) }

// String formats the power with an automatically chosen unit.
func (p Power) String() string {
	w := float64(p)
	switch {
	case math.Abs(w) >= 1e3:
		return fmt.Sprintf("%.4g kW", w/1e3)
	case math.Abs(w) >= 1:
		return fmt.Sprintf("%.4g W", w)
	case math.Abs(w) >= 1e-3:
		return fmt.Sprintf("%.4g mW", w*1e3)
	case w == 0:
		return "0 W"
	default:
		return fmt.Sprintf("%.4g µW", w*1e6)
	}
}

// DividedBy returns the power that yields energy e when sustained for t.
func (e Energy) DividedBy(t Time) Power {
	return Power(float64(e) / float64(t))
}

// Carbon is a mass of emitted CO2-equivalent, in grams.
type Carbon float64

// KgCO2e constructs a Carbon from kilograms of CO2e.
func KgCO2e(kg float64) Carbon { return Carbon(kg * 1e3) }

// Grams reports c in grams of CO2e.
func (c Carbon) Grams() float64 { return float64(c) }

// InKg reports c in kilograms of CO2e.
func (c Carbon) InKg() float64 { return float64(c) / 1e3 }

// String formats the carbon mass with an automatically chosen unit.
func (c Carbon) String() string {
	g := float64(c)
	switch {
	case math.Abs(g) >= 1e6:
		return fmt.Sprintf("%.4g tCO2e", g/1e6)
	case math.Abs(g) >= 1e3:
		return fmt.Sprintf("%.4g kgCO2e", g/1e3)
	case math.Abs(g) >= 1:
		return fmt.Sprintf("%.4g gCO2e", g)
	case g == 0:
		return "0 gCO2e"
	default:
		return fmt.Sprintf("%.4g mgCO2e", g*1e3)
	}
}

// CarbonIntensity is the carbon emitted per unit of energy, in g CO2e per
// kilowatt-hour — the unit used for both CI_use and CI_fab in the paper.
type CarbonIntensity float64

// GramsPerKWh reports ci in g CO2e/kWh.
func (ci CarbonIntensity) GramsPerKWh() float64 { return float64(ci) }

// Of returns the carbon emitted when energy e is drawn from a source with
// intensity ci.
func (ci CarbonIntensity) Of(e Energy) Carbon {
	return Carbon(float64(ci) * e.InKWh())
}

// String formats the carbon intensity.
func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.4g gCO2e/kWh", float64(ci))
}

// Area is a silicon area in square centimetres.
type Area float64

// MM2 constructs an Area from square millimetres.
func MM2(mm2 float64) Area { return Area(mm2 / 100) }

// CM2 reports a in square centimetres.
func (a Area) CM2() float64 { return float64(a) }

// InMM2 reports a in square millimetres.
func (a Area) InMM2() float64 { return float64(a) * 100 }

// String formats the area.
func (a Area) String() string {
	cm2 := float64(a)
	if math.Abs(cm2) < 0.1 && cm2 != 0 {
		return fmt.Sprintf("%.4g mm²", cm2*100)
	}
	return fmt.Sprintf("%.4g cm²", cm2)
}

// Frequency is a clock rate in hertz.
type Frequency float64

// GHz constructs a Frequency from gigahertz.
func GHz(g float64) Frequency { return Frequency(g * 1e9) }

// MHz constructs a Frequency from megahertz.
func MHz(m float64) Frequency { return Frequency(m * 1e6) }

// Hertz reports f in hertz.
func (f Frequency) Hertz() float64 { return float64(f) }

// InGHz reports f in gigahertz.
func (f Frequency) InGHz() float64 { return float64(f) / 1e9 }

// Period returns the duration of one cycle at frequency f.
func (f Frequency) Period() Time { return Time(1 / float64(f)) }

// String formats the frequency with an automatically chosen unit.
func (f Frequency) String() string {
	hz := float64(f)
	switch {
	case math.Abs(hz) >= 1e9:
		return fmt.Sprintf("%.4g GHz", hz/1e9)
	case math.Abs(hz) >= 1e6:
		return fmt.Sprintf("%.4g MHz", hz/1e6)
	case math.Abs(hz) >= 1e3:
		return fmt.Sprintf("%.4g kHz", hz/1e3)
	default:
		return fmt.Sprintf("%.4g Hz", hz)
	}
}

// Bytes is a memory capacity in bytes.
type Bytes float64

// Size constants for Bytes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// MB constructs a Bytes from mebibytes (the paper's "MB" SRAM capacities).
func MB(m float64) Bytes { return Bytes(m) * MiB }

// InMB reports b in mebibytes.
func (b Bytes) InMB() float64 { return float64(b / MiB) }

// String formats the capacity with an automatically chosen unit.
func (b Bytes) String() string {
	v := float64(b)
	switch {
	case math.Abs(v) >= float64(GiB):
		return fmt.Sprintf("%.4g GiB", v/float64(GiB))
	case math.Abs(v) >= float64(MiB):
		return fmt.Sprintf("%.4g MiB", v/float64(MiB))
	case math.Abs(v) >= float64(KiB):
		return fmt.Sprintf("%.4g KiB", v/float64(KiB))
	default:
		return fmt.Sprintf("%.4g B", v)
	}
}

// Bandwidth is a memory bandwidth in bytes per second.
type Bandwidth float64

// GBps constructs a Bandwidth from gigabytes (1e9 bytes) per second, the unit
// used for the LPDDR4 "16 GB/s" figure in §V.
func GBps(g float64) Bandwidth { return Bandwidth(g * 1e9) }

// BytesPerSecond reports bw in bytes per second.
func (bw Bandwidth) BytesPerSecond() float64 { return float64(bw) }

// InGBps reports bw in gigabytes per second.
func (bw Bandwidth) InGBps() float64 { return float64(bw) / 1e9 }

// String formats the bandwidth.
func (bw Bandwidth) String() string {
	return fmt.Sprintf("%.4g GB/s", float64(bw)/1e9)
}
