package cordoba_test

import (
	"strings"
	"testing"

	"cordoba"
)

// The facade exposes a coherent end-to-end workflow: accounting → workload →
// exploration → elimination.
func TestFacadeEndToEnd(t *testing.T) {
	die, err := cordoba.EmbodiedDie(cordoba.Process7nm(), cordoba.FabCoal, 1.0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if die <= 0 {
		t.Fatal("embodied must be positive")
	}
	op := cordoba.Operational(380, cordoba.Power(5).Over(cordoba.Hours(100)))
	if op <= 0 {
		t.Fatal("operational must be positive")
	}

	task, err := cordoba.PaperTask(cordoba.TaskAI5)
	if err != nil {
		t.Fatal(err)
	}
	space, err := cordoba.Explore(task, cordoba.Grid())
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Points) != 121 {
		t.Fatalf("grid size = %d", len(space.Points))
	}
	if frac := space.EliminatedFraction(); frac < 0.9 {
		t.Errorf("elimination = %v", frac)
	}
	designs := cordoba.DesignsFromSpace(space)
	if len(cordoba.Survivors(designs)) == 0 {
		t.Error("no survivors")
	}
	if len(cordoba.SurvivorsFixedTime(designs)) == 0 {
		t.Error("no fixed-time survivors")
	}
}

func TestFacadeKernelsAndTasks(t *testing.T) {
	if got := len(cordoba.Kernels()); got != 15 {
		t.Fatalf("kernels = %d", got)
	}
	if got := len(cordoba.PaperTasks()); got != 5 {
		t.Fatalf("tasks = %d", got)
	}
	ids := map[cordoba.KernelID]bool{}
	for _, k := range cordoba.Kernels() {
		ids[k] = true
	}
	for _, k := range []cordoba.KernelID{
		cordoba.KernelRN18, cordoba.KernelRN50, cordoba.KernelRN152,
		cordoba.KernelGN, cordoba.KernelMN2, cordoba.KernelET,
		cordoba.Kernel3DAgg, cordoba.KernelHRN, cordoba.KernelEFAN,
		cordoba.KernelJLP, cordoba.KernelUNet, cordoba.KernelDN,
		cordoba.KernelSR256, cordoba.KernelSR512, cordoba.KernelSR1024,
	} {
		if !ids[k] {
			t.Errorf("exported kernel constant %q not in Kernels()", k)
		}
	}
}

func TestFacadeAccelerators(t *testing.T) {
	if got := len(cordoba.Grid()); got != 121 {
		t.Fatalf("grid = %d", got)
	}
	if got := len(cordoba.Stacked3D()); got != 7 {
		t.Fatalf("stacked = %d", got)
	}
	c, err := cordoba.AcceleratorByID("a48")
	if err != nil || c.MACArrays != 16 {
		t.Fatalf("a48: %+v, %v", c, err)
	}
	custom := cordoba.NewAccelerator("mine", 8, cordoba.MB(4))
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVRPlatform(t *testing.T) {
	platform := cordoba.Quest2()
	tasks := cordoba.PaperVRTasks()
	if len(tasks) != 5 {
		t.Fatalf("VR tasks = %d", len(tasks))
	}
	n, err := platform.OptimalCores(tasks[1]) // M-1
	if err != nil || n != 4 {
		t.Fatalf("M-1 optimal cores = %d, %v", n, err)
	}
}

func TestFacadeTraces(t *testing.T) {
	designs := []cordoba.UncertainDesign{
		{Name: "x", Energy: 2, Delay: 1, Embodied: 10},
		{Name: "y", Energy: 1, Delay: 2, Embodied: 30},
	}
	for _, tr := range []cordoba.CITrace{
		cordoba.ConstantCI(380),
		cordoba.DiurnalCI(400, 100),
		cordoba.DecarbonizationRamp(500, 50, cordoba.Years(5)),
	} {
		v, err := cordoba.TCDPUnderTrace(designs[0], tr, cordoba.Years(1))
		if err != nil || v <= 0 {
			t.Errorf("%s: tCDP = %v, err %v", tr.Name(), v, err)
		}
		if _, err := cordoba.OptimalUnderTrace(designs, tr, cordoba.Years(1)); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	if got := len(cordoba.Experiments()); got != 19 {
		t.Fatalf("experiments = %d", got)
	}
	var b strings.Builder
	if err := cordoba.RunExperiment("table2", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tCDP-optimal: IC \"E\"") {
		t.Errorf("table2 output missing the headline:\n%s", b.String())
	}
	if err := cordoba.RunExperiment("nope", &b); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeUnits(t *testing.T) {
	if cordoba.KWh(1).Joules() != 3.6e6 {
		t.Error("KWh broken")
	}
	if cordoba.MB(8).InMB() != 8 {
		t.Error("MB broken")
	}
	if cordoba.Hours(2).Seconds() != 7200 {
		t.Error("Hours broken")
	}
	if mid := cordoba.LogSpace(1, 100, 3)[1]; mid < 10-1e-9 || mid > 10+1e-9 {
		t.Errorf("LogSpace midpoint = %v", mid)
	}
}

func TestFacadeLifecycle(t *testing.T) {
	svc := cordoba.DefaultRefreshService()
	best, err := svc.Optimal(cordoba.RefreshPeriods())
	if err != nil {
		t.Fatal(err)
	}
	if best.Outcome.TCDP() <= 0 {
		t.Fatal("degenerate refresh optimum")
	}
	if y := best.Period.InYears(); y < 1 || y > 10 {
		t.Errorf("optimal period %v out of range", best.Period)
	}
}

func TestFacadeScheduler(t *testing.T) {
	w := cordoba.SyntheticVRWorkload("vr", 4.0, 20, 1)
	r, err := cordoba.SimulateScheduler(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.TLP < 2 || r.TLP > 8 {
		t.Errorf("TLP = %v", r.TLP)
	}
	if r.Makespan <= 0 {
		t.Error("no makespan")
	}
}

// End-to-end on a weighted task: the §IV-A motivating XR session runs
// through the whole pipeline — accounting, simulation, exploration and
// elimination — via the public facade with a custom task.
func TestFacadeWeightedSessionTask(t *testing.T) {
	session := cordoba.Task{
		Name: "custom XR session",
		Calls: map[cordoba.KernelID]float64{
			cordoba.KernelET:    90,
			cordoba.KernelJLP:   60,
			cordoba.KernelSR512: 72,
		},
	}
	space, err := cordoba.Explore(session, cordoba.Grid())
	if err != nil {
		t.Fatal(err)
	}
	if frac := space.EliminatedFraction(); frac < 0.8 {
		t.Errorf("elimination = %v", frac)
	}
	// Per-second sessions, two hours a day for three years.
	n := 2.0 * 3600 * 365 * 3
	best := space.Points[space.OptimalAt(n)]
	r := best.Report(space.CIUse, n)
	if r.TotalCarbon() <= 0 || r.TCDP() <= 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	if _, err := r.CCI(); err != nil {
		t.Fatalf("CCI: %v", err)
	}
}
