module cordoba

go 1.22
