package cordoba_test

// One benchmark per paper table and figure (DESIGN.md §3): each regenerates
// the corresponding experiment end-to-end, so `go test -bench=.` both times
// the reproduction pipeline and re-verifies that every experiment still runs.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cordoba"
	"cordoba/internal/carbon"
	"cordoba/internal/dse"
	"cordoba/internal/experiments"
	"cordoba/internal/server"
)

func benchExperiment(b *testing.B, key string) {
	b.Helper()
	e, err := experiments.ByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure8F(b *testing.B) { benchExperiment(b, "fig8f") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTableV(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTableVI(b *testing.B)  { benchExperiment(b, "table6") }

// BenchmarkFullDSE times the core §VI-B loop: evaluating the complete
// 121-configuration space on one task (the unit of work behind Figs. 7–9;
// the paper reports hours end-to-end for its simulator-backed version).
func BenchmarkFullDSE(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		b.Fatal(err)
	}
	grid := cordoba.Grid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cordoba.Explore(task, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateParallel compares the sequential 121-point grid
// evaluation against the fanned-out version across worker counts — the
// numbers behind cordobad's default pool sizing (speedup flattens after a
// handful of workers, so the daemon admits several moderately parallel
// evaluations rather than one maximally parallel one).
func BenchmarkEvaluateParallel(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		b.Fatal(err)
	}
	grid := cordoba.Grid()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cordoba.Explore(task, grid); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cordoba.ExploreParallel(task, grid, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerDSE times cordobad's /v1/dse end-to-end: an uncached
// request pays the full grid evaluation; a cached one replays the stored
// bytes — the gap is the whole point of the response cache.
func BenchmarkServerDSE(b *testing.B) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	body := `{"task":"All kernels"}`
	post := func(b *testing.B, h http.Handler) int {
		req := httptest.NewRequest("POST", "/v1/dse", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
		return w.Body.Len()
	}

	b.Run("uncached", func(b *testing.B) {
		s := server.New(server.Config{CacheSize: -1, Logger: quiet})
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h)
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := server.New(server.Config{Logger: quiet})
		h := s.Handler()
		post(b, h) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h)
		}
	})
}

// BenchmarkKernelProfile times a single kernel simulation (ResNet-50 on the
// paper's a48 configuration).
func BenchmarkKernelProfile(b *testing.B) {
	cfg, err := cordoba.AcceleratorByID("a48")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Profile(cordoba.KernelRN50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelope times the never-optimal elimination over the 121-design
// space (the §IV-B machinery).
func BenchmarkEnvelope(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskXR10)
	if err != nil {
		b.Fatal(err)
	}
	space, err := cordoba.Explore(task, cordoba.Grid())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := space.EverOptimal(); len(got) == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// BenchmarkAblations times the calibration-sensitivity sweep.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkLifetime times the §VII refresh-cadence study.
func BenchmarkLifetime(b *testing.B) { benchExperiment(b, "lifetime") }

// BenchmarkScheduler times the discrete-event scheduler substrate on a
// VR-style workload (the Perfetto substitute).
func BenchmarkScheduler(b *testing.B) {
	w := cordoba.SyntheticVRWorkload("vr", 4.0, 60, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cordoba.SimulateScheduler(w, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// streamBenchGrid is the ≥100k-point knob grid behind the streaming-engine
// acceptance benchmark: 50 MAC options × 30 SRAM options × 10 DVFS points ×
// 7 technology nodes = 105,000 configurations.
func streamBenchGrid() dse.Grid {
	macs := make([]int, 50)
	for i := range macs {
		macs[i] = 4 * (i + 1)
	}
	sram := make([]float64, 30)
	for i := range sram {
		sram[i] = 1 + float64(i)*2
	}
	vdd := make([]float64, 10)
	for i := range vdd {
		vdd[i] = 0.55 + 0.05*float64(i)
	}
	return dse.Grid{
		MACArrays: macs,
		SRAMMB:    sram,
		VDDScales: vdd,
		Nodes:     []string{"28nm", "20nm", "14nm", "10nm", "7nm", "5nm", "3nm"},
	}
}

// BenchmarkStreamingDSE pits the v2 streaming engine against naive full
// materialization on the same 105k-point knob grid ("naive" re-derives
// every kernel cost per configuration and holds all points in memory;
// "streaming" memoizes shape profiles and keeps only the envelope). The
// acceptance bar for the engine is ≥5× lower wall time for streaming.
func BenchmarkStreamingDSE(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		b.Fatal(err)
	}
	g := streamBenchGrid()
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := dse.EvaluateGrid(task, g, carbon.FabCoal, 380)
			if err != nil {
				b.Fatal(err)
			}
			if len(s.EverOptimal()) == 0 {
				b.Fatal("empty envelope")
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := dse.EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, dse.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if r.Kept() == 0 {
				b.Fatal("empty envelope")
			}
		}
	})
}

// BenchmarkSurrogateDSE pits the surrogate-guided Pareto search against the
// exhaustive streaming engine on the same 105k-point grid. The surrogate
// pays ~2% of the evaluations for ≥ 0.99 of the oracle hypervolume (the
// golden tests in internal/dse pin the exact quality) and roughly 5× less
// wall time — per-generation surrogate fitting keeps it from scaling
// linearly with the evaluation discount, but the gap widens with model cost
// since the exhaustive walk pays the evaluator on every grid point.
func BenchmarkSurrogateDSE(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		b.Fatal(err)
	}
	g := streamBenchGrid()
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := cordoba.ExploreStreamAt(context.Background(), task, g, carbon.FabCoal, 380, cordoba.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if r.Kept() == 0 {
				b.Fatal("empty envelope")
			}
		}
	})
	b.Run("surrogate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := cordoba.ExploreSurrogate(context.Background(), task, g, carbon.FabCoal, 380, cordoba.SurrogateOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if r.Kept() == 0 {
				b.Fatal("empty envelope")
			}
		}
	})
}

// partitionBenchGrid is a ~3k-shape knob grid crossed with the full partition
// axis (3 integration styles × 2 chiplet counts × 2 memory nodes — 12× the
// cells of its flat projection).
func partitionBenchGrid() dse.Grid {
	macs := make([]int, 16)
	for i := range macs {
		macs[i] = 4 * (i + 1)
	}
	sram := make([]float64, 8)
	for i := range sram {
		sram[i] = 1 + float64(i)*4
	}
	return dse.Grid{
		MACArrays:    macs,
		SRAMMB:       sram,
		VDDScales:    []float64{1.0, 0.85, 0.7},
		Nodes:        []string{"7nm", "3nm"},
		Integrations: []string{"monolithic", "2.5d", "3d"},
		Chiplets:     []int{2, 4},
		ChipletNodes: []string{"10nm", "14nm"},
	}
}

// BenchmarkPartitionDSE times the streaming engine over the partition axes
// against the same grid's flat (monolithic-only) projection. The partition
// axes multiply the cell count 12× but price through the shared per-(shape,
// embodied-class) path, so the marginal cost per extra cell must stay small
// and the allocation count must track embodied classes, not cells — the
// baseline entries in testdata/bench_baseline.json gate time, B/op, and
// allocs/op on both runs.
func BenchmarkPartitionDSE(b *testing.B) {
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		b.Fatal(err)
	}
	part := partitionBenchGrid()
	flat := part
	flat.Integrations, flat.Chiplets, flat.ChipletNodes = nil, nil, nil
	for _, c := range []struct {
		name string
		grid dse.Grid
	}{
		{"flat", flat},
		{"partition", part},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := dse.EvaluateStream(context.Background(), task, c.grid, carbon.FabCoal, 380, dse.StreamOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if r.Kept() == 0 {
					b.Fatal("empty envelope")
				}
			}
		})
	}
}
